"""Recursive-descent parser for the timing-label language.

Concrete syntax (paper's Fig. 1, in an ASCII rendering, plus arrays)::

    command  := labeled (';' labeled)* ';'?
    labeled  := base annot?
    base     := 'skip'
              | IDENT ':=' expr
              | IDENT '[' expr ']' ':=' expr
              | 'if' expr 'then' '{' command '}' 'else' '{' command '}'
              | 'while' expr 'do' '{' command '}'
              | 'sleep' '(' expr ')'
              | 'mitigate' ('@' IDENT)? '(' expr ',' LABEL ')' '{' command '}'
    annot    := '[' LABEL ',' LABEL ']'        -- read label, write label

``LABEL`` is a level name from the parse-time lattice, or ``_`` meaning
"leave unannotated" (to be filled by label inference).  Expressions use
C-like operator precedence.  Example::

    if h1 then { h2 := l1 [L,H] } else { h2 := l2 [L,H] } [L,H];
    l3 := l1 [L,L]
"""

from __future__ import annotations

from typing import List, Optional

from ..lattice import Label, Lattice, two_point
from . import ast
from .lexer import Token, tokenize


class ParseError(SyntaxError):
    """Raised on a syntactically invalid program."""


#: The lattice used when none is supplied.  A shared instance (rather than a
#: fresh ``two_point()`` per parse) so that labels from separately parsed
#: default-lattice programs compare equal.
DEFAULT_LATTICE = two_point()


# Binary operator precedence, loosest first.  Each tier is left-associative.
_PRECEDENCE: List[List[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    """Parses a token stream against a security lattice.

    The lattice is needed at parse time because label annotations are level
    *names*; they resolve to :class:`~repro.lattice.Label` objects eagerly so
    the rest of the toolchain never handles raw strings.
    """

    def __init__(self, source: str, lattice: Optional[Lattice] = None):
        self.lattice = lattice if lattice is not None else DEFAULT_LATTICE
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _scan_label(self, pos: int) -> Optional[int]:
        """If a label name starts at token ``pos``, return the position just
        past it, else None.  Labels are identifiers (including ``_``) or
        powerset-style brace sets ``{a,b}`` / ``{}``."""
        tok = self.tokens[pos]
        if tok.kind == "ident":
            return pos + 1
        if tok.kind == "{":
            pos += 1
            if self.tokens[pos].kind == "}":
                return pos + 1
            while True:
                if self.tokens[pos].kind != "ident":
                    return None
                pos += 1
                if self.tokens[pos].kind == "}":
                    return pos + 1
                if self.tokens[pos].kind != ",":
                    return None
                pos += 1
        return None

    def _at_annotation(self) -> bool:
        """Lookahead disambiguating ``[L,H]`` annotations from ``a[i]`` array
        subscripts: an annotation is exactly ``[ label , label ]`` (array
        indices are single expressions, so they never contain a top-level
        comma)."""
        if self.tokens[self.pos].kind != "[":
            return False
        after_first = self._scan_label(self.pos + 1)
        if after_first is None or self.tokens[after_first].kind != ",":
            return False
        after_second = self._scan_label(after_first + 1)
        return (after_second is not None
                and self.tokens[after_second].kind == "]")

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _span_from(self, start: Token) -> ast.Span:
        """The source region from ``start`` through the last consumed token."""
        last = self.tokens[self.pos - 1] if self.pos > 0 else start
        return ast.Span(
            start.line, start.column, last.line, last.column + len(last.text)
        )

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._peek()
        if not self._check(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r} but found {tok.text or tok.kind!r} "
                f"at line {tok.line}, column {tok.column}"
            )
        return self._advance()

    # -- entry point ----------------------------------------------------------

    def parse_program(self) -> ast.Command:
        cmd = self._command()
        self._expect("eof")
        return cmd

    def parse_expression(self) -> ast.Expr:
        expr = self._expr()
        self._expect("eof")
        return expr

    # -- commands --------------------------------------------------------------

    def _command(self) -> ast.Command:
        parts = [self._labeled()]
        while self._match(";"):
            if self._check("eof") or self._check("}"):
                break  # tolerate a trailing semicolon
            parts.append(self._labeled())
        return ast.seq(*parts)

    def _labeled(self) -> ast.Command:
        start_tok = self._peek()
        cmd = self._base()
        read_label, write_label = self._annotation()
        assert isinstance(cmd, ast.LabeledCommand)
        cmd.read_label = read_label
        cmd.write_label = write_label
        cmd.span = self._span_from(start_tok)
        return cmd

    def _annotation(self):
        if not self._match("["):
            return None, None
        read_label = self._label_name()
        self._expect(",")
        write_label = self._label_name()
        self._expect("]")
        return read_label, write_label

    def _label_name(self) -> Optional[Label]:
        tok = self._peek()
        if tok.kind == "ident" and tok.text == "_":
            self._advance()
            return None
        if tok.kind == "{":
            # Powerset-style level names: {}, {a}, {a,b}, ...
            end = self._scan_label(self.pos)
            if end is None:
                raise ParseError(
                    f"malformed brace-set level name at line {tok.line}, "
                    f"column {tok.column}"
                )
            parts = [
                t.text for t in self.tokens[self.pos + 1:end - 1]
                if t.kind == "ident"
            ]
            self.pos = end
            name = "{" + ",".join(sorted(parts)) + "}"
        elif tok.kind == "ident":
            self._advance()
            name = tok.text
        else:
            raise ParseError(
                f"expected a security level name at line {tok.line}, "
                f"column {tok.column}, found {tok.text or tok.kind!r}"
            )
        if name not in self.lattice:
            raise ParseError(
                f"unknown security level {name!r} at line {tok.line}; "
                f"lattice levels are {[l.name for l in self.lattice]}"
            )
        return self.lattice[name]

    def _block(self) -> ast.Command:
        self._expect("{")
        cmd = self._command()
        self._expect("}")
        return cmd

    def _base(self) -> ast.Command:
        tok = self._peek()
        if self._match("keyword", "skip"):
            return ast.Skip()
        if self._match("keyword", "sleep"):
            self._expect("(")
            duration = self._expr()
            self._expect(")")
            return ast.Sleep(duration=duration)
        if self._match("keyword", "if"):
            cond = self._expr()
            self._expect("keyword", "then")
            then_branch = self._block()
            self._expect("keyword", "else")
            else_branch = self._block()
            return ast.If(
                cond=cond, then_branch=then_branch, else_branch=else_branch
            )
        if self._match("keyword", "while"):
            cond = self._expr()
            self._expect("keyword", "do")
            body = self._block()
            return ast.While(cond=cond, body=body)
        if self._match("keyword", "mitigate"):
            mit_id = None
            if self._match("@"):
                mit_id = self._expect("ident").text
            self._expect("(")
            budget = self._expr()
            self._expect(",")
            level = self._label_name()
            if level is None:
                raise ParseError(
                    f"mitigate at line {tok.line} needs an explicit "
                    "mitigation level (not '_')"
                )
            self._expect(")")
            body = self._block()
            return ast.Mitigate(
                budget=budget, level=level, body=body, mit_id=mit_id
            )
        if tok.kind == "ident":
            name = self._advance().text
            if self._match("["):
                index = self._expr()
                self._expect("]")
                self._expect(":=")
                value = self._expr()
                return ast.ArrayAssign(array=name, index=index, expr=value)
            self._expect(":=")
            value = self._expr()
            return ast.Assign(target=name, expr=value)
        raise ParseError(
            f"expected a command at line {tok.line}, column {tok.column}, "
            f"found {tok.text or tok.kind!r}"
        )

    # -- expressions -------------------------------------------------------------

    def _expr(self, tier: int = 0) -> ast.Expr:
        if tier >= len(_PRECEDENCE):
            return self._unary()
        start_tok = self._peek()
        left = self._expr(tier + 1)
        while any(self._check(op) for op in _PRECEDENCE[tier]):
            op = self._advance().text
            right = self._expr(tier + 1)
            left = ast.BinOp(op=op, left=left, right=right)
            left.span = self._span_from(start_tok)
        return left

    def _unary(self) -> ast.Expr:
        start_tok = self._peek()
        if self._match("-"):
            node: ast.Expr = ast.UnOp(op="-", operand=self._unary())
        elif self._match("!"):
            node = ast.UnOp(op="!", operand=self._unary())
        else:
            return self._primary()
        node.span = self._span_from(start_tok)
        return node

    def _primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "int":
            self._advance()
            node: ast.Expr = ast.IntLit(int(tok.text))
        elif tok.kind == "ident":
            self._advance()
            if self._check("[") and not self._at_annotation():
                self._advance()
                index = self._expr()
                self._expect("]")
                node = ast.ArrayRead(array=tok.text, index=index)
            else:
                node = ast.Var(tok.text)
        elif self._match("("):
            inner = self._expr()
            self._expect(")")
            return inner
        else:
            raise ParseError(
                f"expected an expression at line {tok.line}, column "
                f"{tok.column}, found {tok.text or tok.kind!r}"
            )
        node.span = self._span_from(tok)
        return node


def parse(source: str, lattice: Optional[Lattice] = None) -> ast.Command:
    """Parse a whole program.  See the module docstring for the grammar."""
    return Parser(source, lattice).parse_program()


def parse_expr(source: str, lattice: Optional[Lattice] = None) -> ast.Expr:
    """Parse a single expression."""
    return Parser(source, lattice).parse_expression()
