"""A fluent Python API for constructing programs.

The case-study applications (``repro.apps``) build nontrivial programs --
hash lookups, modular exponentiation -- and doing that through raw AST
constructors is noisy.  This module provides a small embedded DSL::

    from repro.lang.builder import B
    from repro.lattice import two_point

    lat = two_point()
    L, H = lat["L"], lat["H"]
    b = B(lat)
    prog = b.seq(
        b.assign("x", b.v("y") + 1, L, L),
        b.while_(b.v("x") > 0, b.assign("x", b.v("x") - 1, L, L), L, L),
    )

Expression fragments (:class:`E`) overload the Python operators; comparisons
produce language-level comparison nodes (value 0/1), so they cannot be used
in Python ``if`` conditions -- build the AST instead.

Nodes built here never came from source text, so they all carry the
synthetic source span :data:`repro.lang.ast.SYNTHETIC_SPAN` (the parser is
the only producer of real spans); diagnostics fall back to node ids for
them.
"""

from __future__ import annotations

from typing import Optional, Union

from ..lattice import Label, Lattice
from . import ast

Exprish = Union["E", ast.Expr, int, str]


class E:
    """A wrapper around :class:`~repro.lang.ast.Expr` with operator overloads."""

    __slots__ = ("node",)

    def __init__(self, node: ast.Expr):
        self.node = node

    # arithmetic -----------------------------------------------------------
    def __add__(self, other: Exprish) -> "E":
        return _bin("+", self, other)

    def __radd__(self, other: Exprish) -> "E":
        return _bin("+", other, self)

    def __sub__(self, other: Exprish) -> "E":
        return _bin("-", self, other)

    def __rsub__(self, other: Exprish) -> "E":
        return _bin("-", other, self)

    def __mul__(self, other: Exprish) -> "E":
        return _bin("*", self, other)

    def __rmul__(self, other: Exprish) -> "E":
        return _bin("*", other, self)

    def __floordiv__(self, other: Exprish) -> "E":
        return _bin("/", self, other)

    def __rfloordiv__(self, other: Exprish) -> "E":
        return _bin("/", other, self)

    def __mod__(self, other: Exprish) -> "E":
        return _bin("%", self, other)

    def __rmod__(self, other: Exprish) -> "E":
        return _bin("%", other, self)

    def __lshift__(self, other: Exprish) -> "E":
        return _bin("<<", self, other)

    def __rshift__(self, other: Exprish) -> "E":
        return _bin(">>", self, other)

    def __and__(self, other: Exprish) -> "E":
        return _bin("&", self, other)

    def __or__(self, other: Exprish) -> "E":
        return _bin("|", self, other)

    def __xor__(self, other: Exprish) -> "E":
        return _bin("^", self, other)

    def __neg__(self) -> "E":
        return E(ast.UnOp(op="-", operand=self.node))

    # comparisons (produce language-level 0/1 values) ------------------------
    def __eq__(self, other: Exprish) -> "E":  # type: ignore[override]
        return _bin("==", self, other)

    def __ne__(self, other: Exprish) -> "E":  # type: ignore[override]
        return _bin("!=", self, other)

    def __lt__(self, other: Exprish) -> "E":
        return _bin("<", self, other)

    def __le__(self, other: Exprish) -> "E":
        return _bin("<=", self, other)

    def __gt__(self, other: Exprish) -> "E":
        return _bin(">", self, other)

    def __ge__(self, other: Exprish) -> "E":
        return _bin(">=", self, other)

    def and_(self, other: Exprish) -> "E":
        return _bin("&&", self, other)

    def or_(self, other: Exprish) -> "E":
        return _bin("||", self, other)

    def not_(self) -> "E":
        return E(ast.UnOp(op="!", operand=self.node))

    __hash__ = None  # type: ignore[assignment]  # == is overloaded

    def __repr__(self) -> str:
        from .pretty import pretty_expr

        return f"E({pretty_expr(self.node)})"


def _coerce(value: Exprish) -> ast.Expr:
    if isinstance(value, E):
        return value.node
    if isinstance(value, ast.Expr):
        return value
    if isinstance(value, bool):
        return ast.IntLit(int(value))
    if isinstance(value, int):
        return ast.IntLit(value)
    if isinstance(value, str):
        return ast.Var(value)
    raise TypeError(f"cannot use {value!r} as an expression")


def _bin(op: str, left: Exprish, right: Exprish) -> E:
    return E(ast.BinOp(op=op, left=_coerce(left), right=_coerce(right)))


class B:
    """Command builder bound to a security lattice."""

    def __init__(self, lattice: Lattice):
        self.lattice = lattice

    # expressions ------------------------------------------------------------
    @staticmethod
    def v(name: str) -> E:
        """A scalar variable reference."""
        return E(ast.Var(name))

    @staticmethod
    def lit(value: int) -> E:
        """An integer literal."""
        return E(ast.IntLit(value))

    @staticmethod
    def at(array: str, index: Exprish) -> E:
        """An array element read ``array[index]``."""
        return E(ast.ArrayRead(array=array, index=_coerce(index)))

    # commands ----------------------------------------------------------------
    @staticmethod
    def seq(*commands: ast.Command) -> ast.Command:
        return ast.seq(*commands)

    @staticmethod
    def skip(
        read: Optional[Label] = None, write: Optional[Label] = None
    ) -> ast.Skip:
        return ast.Skip(read_label=read, write_label=write)

    @staticmethod
    def assign(
        target: str,
        value: Exprish,
        read: Optional[Label] = None,
        write: Optional[Label] = None,
    ) -> ast.Assign:
        return ast.Assign(
            target=target, expr=_coerce(value), read_label=read, write_label=write
        )

    @staticmethod
    def store(
        array: str,
        index: Exprish,
        value: Exprish,
        read: Optional[Label] = None,
        write: Optional[Label] = None,
    ) -> ast.ArrayAssign:
        return ast.ArrayAssign(
            array=array,
            index=_coerce(index),
            expr=_coerce(value),
            read_label=read,
            write_label=write,
        )

    @staticmethod
    def if_(
        cond: Exprish,
        then_branch: ast.Command,
        else_branch: Optional[ast.Command] = None,
        read: Optional[Label] = None,
        write: Optional[Label] = None,
    ) -> ast.If:
        if else_branch is None:
            else_branch = ast.Skip(read_label=read, write_label=write)
        return ast.If(
            cond=_coerce(cond),
            then_branch=then_branch,
            else_branch=else_branch,
            read_label=read,
            write_label=write,
        )

    @staticmethod
    def while_(
        cond: Exprish,
        body: ast.Command,
        read: Optional[Label] = None,
        write: Optional[Label] = None,
    ) -> ast.While:
        return ast.While(
            cond=_coerce(cond), body=body, read_label=read, write_label=write
        )

    @staticmethod
    def sleep(
        duration: Exprish,
        read: Optional[Label] = None,
        write: Optional[Label] = None,
    ) -> ast.Sleep:
        return ast.Sleep(
            duration=_coerce(duration), read_label=read, write_label=write
        )

    @staticmethod
    def mitigate(
        budget: Exprish,
        level: Label,
        body: ast.Command,
        mit_id: Optional[str] = None,
        read: Optional[Label] = None,
        write: Optional[Label] = None,
    ) -> ast.Mitigate:
        return ast.Mitigate(
            budget=_coerce(budget),
            level=level,
            body=body,
            mit_id=mit_id,
            read_label=read,
            write_label=write,
        )
