"""Pretty-printer for the timing-label language.

``pretty(parse(s))`` re-parses to a structurally equal AST; the property
tests in ``tests/property/test_parser_roundtrip.py`` check both directions.
"""

from __future__ import annotations

from . import ast

# Must agree with repro.lang.parser._PRECEDENCE (loosest first).
_TIER = {
    "||": 0,
    "&&": 1,
    "|": 2,
    "^": 3,
    "&": 4,
    "==": 5,
    "!=": 5,
    "<": 6,
    "<=": 6,
    ">": 6,
    ">=": 6,
    "<<": 7,
    ">>": 7,
    "+": 8,
    "-": 8,
    "*": 9,
    "/": 9,
    "%": 9,
}
_UNARY_TIER = 10


def pretty_expr(expr: ast.Expr, parent_tier: int = -1) -> str:
    """Render an expression, inserting parentheses only where needed."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.ArrayRead):
        return f"{expr.array}[{pretty_expr(expr.index)}]"
    if isinstance(expr, ast.UnOp):
        inner = pretty_expr(expr.operand, _UNARY_TIER)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_tier > _UNARY_TIER else text
    if isinstance(expr, ast.BinOp):
        tier = _TIER[expr.op]
        # Left-associative: the left child may share the tier, the right
        # child must bind strictly tighter.
        left = pretty_expr(expr.left, tier)
        right = pretty_expr(expr.right, tier + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_tier > tier else text
    raise TypeError(f"not an expression: {expr!r}")


def _annotation(cmd: ast.LabeledCommand) -> str:
    if cmd.read_label is None and cmd.write_label is None:
        return ""
    read = cmd.read_label.name if cmd.read_label is not None else "_"
    write = cmd.write_label.name if cmd.write_label is not None else "_"
    return f" [{read},{write}]"


def pretty(cmd: ast.Command, indent: int = 0) -> str:
    """Render a command as re-parseable source text."""
    pad = "    " * indent
    if isinstance(cmd, ast.Seq):
        return f"{pretty(cmd.first, indent)};\n{pretty(cmd.second, indent)}"
    if isinstance(cmd, ast.Skip):
        return f"{pad}skip{_annotation(cmd)}"
    if isinstance(cmd, ast.Assign):
        return f"{pad}{cmd.target} := {pretty_expr(cmd.expr)}{_annotation(cmd)}"
    if isinstance(cmd, ast.ArrayAssign):
        return (
            f"{pad}{cmd.array}[{pretty_expr(cmd.index)}] := "
            f"{pretty_expr(cmd.expr)}{_annotation(cmd)}"
        )
    if isinstance(cmd, ast.Sleep):
        return f"{pad}sleep({pretty_expr(cmd.duration)}){_annotation(cmd)}"
    if isinstance(cmd, ast.If):
        return (
            f"{pad}if {pretty_expr(cmd.cond)} then {{\n"
            f"{pretty(cmd.then_branch, indent + 1)}\n"
            f"{pad}}} else {{\n"
            f"{pretty(cmd.else_branch, indent + 1)}\n"
            f"{pad}}}{_annotation(cmd)}"
        )
    if isinstance(cmd, ast.While):
        return (
            f"{pad}while {pretty_expr(cmd.cond)} do {{\n"
            f"{pretty(cmd.body, indent + 1)}\n"
            f"{pad}}}{_annotation(cmd)}"
        )
    if isinstance(cmd, ast.Mitigate):
        # Auto-generated ids are omitted so round-trips do not pin ids that
        # were never in the source.
        tag = "" if getattr(cmd, "auto_id", False) else f"@{cmd.mit_id}"
        return (
            f"{pad}mitigate{tag}({pretty_expr(cmd.budget)}, {cmd.level.name}) {{\n"
            f"{pretty(cmd.body, indent + 1)}\n"
            f"{pad}}}{_annotation(cmd)}"
        )
    raise TypeError(f"not a command: {cmd!r}")
