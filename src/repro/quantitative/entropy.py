"""Entropy-based leakage measures, for comparison with Definition 1.

Sec. 6.2 notes that the distinguishable-observation count bounds the
Shannon-entropy and min-entropy measures used in the quantitative
information-flow literature.  Given the observation map produced by
:func:`repro.quantitative.leakage.measure_leakage` (which observation each
secret variant produced) and a prior over variants (uniform by default),
these functions compute:

* Shannon mutual information ``I(secret; observation)``;
* min-entropy leakage ``log2( V(secret|obs) / V(secret) )`` where ``V`` is
  Smith's vulnerability (probability of guessing in one try).

Both are bounded by ``log2`` of the number of distinct observations, which
the tests verify.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def _normalize(prior: Sequence[float]) -> List[float]:
    total = float(sum(prior))
    if total <= 0:
        raise ValueError("prior must have positive mass")
    return [p / total for p in prior]


def _joint(
    observations: Dict[Tuple, List[int]], prior: List[float]
) -> List[List[float]]:
    """Joint distribution rows = observations, entries = variant masses."""
    return [
        [prior[index] for index in indices]
        for indices in observations.values()
    ]


def shannon_leakage(
    observations: Dict[Tuple, List[int]],
    prior: Optional[Sequence[float]] = None,
) -> float:
    """Mutual information between the secret variant and the observation.

    The channel is deterministic (Property 2), so
    ``I(S; O) = H(O) = -sum_o p(o) log2 p(o)``.
    """
    n_runs = sum(len(v) for v in observations.values())
    prior = _normalize(
        prior if prior is not None else [1.0] * n_runs
    )
    entropy = 0.0
    for row in _joint(observations, prior):
        mass = sum(row)
        if mass > 0:
            entropy -= mass * math.log2(mass)
    return entropy


def min_entropy_leakage(
    observations: Dict[Tuple, List[int]],
    prior: Optional[Sequence[float]] = None,
) -> float:
    """Smith's min-entropy leakage for the deterministic channel.

    ``log2( sum_o max_s p(s, o) / max_s p(s) )``.
    """
    n_runs = sum(len(v) for v in observations.values())
    prior = _normalize(
        prior if prior is not None else [1.0] * n_runs
    )
    prior_vulnerability = max(prior)
    posterior_vulnerability = sum(
        max(row) for row in _joint(observations, prior) if row
    )
    return math.log2(posterior_vulnerability / prior_vulnerability)
