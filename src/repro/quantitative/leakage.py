"""Quantitative leakage: Definition 1 of the paper.

``Q(L, lA, c, m, E)`` is the log (base 2) of the number of *distinguishable
observations* an adversary at ``lA`` can make of runs of ``c`` started from
memories and environments that differ from ``(m, E)`` only at levels in
``L_{lA}`` (the members of ``L`` not already observable to the adversary).
An observation is the full sequence of ``lA``-visible assignment events with
their values *and times* -- the coresident adversary of Sec. 3.4.

As shown in the predictive-mitigation papers, counting distinguishable
observations bounds both Shannon- and min-entropy leakage measures
(:mod:`repro.quantitative.entropy` provides those for comparison).

The definition quantifies over *all* memories/environments projected-equal
to the baseline outside ``L_{lA}``.  That set is infinite, so the API takes
an explicit finite family of *secret variants* -- typically "every value the
secret can take" for enumerable secret spaces, which makes the measurement
exact, or a large sample, which makes it a lower bound (every distinct
observation found is genuinely distinguishable).  The function validates
each variant against the projected-equivalence side condition so that an
accidentally-miscast family cannot inflate the measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..lang import ast
from ..lattice import Label, Lattice
from ..machine.layout import Layout
from ..machine.memory import Memory, projected_equivalent
from ..hardware.interface import MachineEnvironment
from ..semantics.events import observable_events, observation_key
from ..semantics.full import execute
from ..semantics.mitigation import MitigationState


class VariantError(ValueError):
    """A supplied variant changes state outside the allowed level set."""


@dataclass
class LeakageResult:
    """The outcome of a Definition 1 measurement."""

    bits: float
    distinguishable: int
    runs: int
    observations: Dict[Tuple, List[int]]

    def __str__(self) -> str:
        return (
            f"{self.bits:.3f} bits ({self.distinguishable} distinguishable "
            f"observations over {self.runs} runs)"
        )


def _validate_variant(
    base: Memory,
    variant: Memory,
    gamma: Mapping[str, Label],
    lattice: Lattice,
    allowed: frozenset,
) -> None:
    for level in lattice.levels():
        if level in allowed:
            continue
        if not projected_equivalent(base, variant, gamma, level):
            raise VariantError(
                f"variant differs from the baseline at level {level}, "
                "which is outside the varied set L_{lA}"
            )


def secret_variants(
    base: Memory, assignments: Iterable[Mapping[str, object]]
) -> List[Memory]:
    """Build variant memories from the baseline plus per-variant overrides.

    Each element of ``assignments`` maps names to new values (ints for
    scalars, sequences for arrays).  A convenience for enumerating secret
    spaces::

        variants = secret_variants(m, ({"h": v} for v in range(16)))
    """
    out = []
    for overrides in assignments:
        variant = base.copy()
        for name, value in overrides.items():
            if variant.is_scalar(name):
                variant.write(name, value)  # type: ignore[arg-type]
            elif variant.is_array(name):
                for i, item in enumerate(value):  # type: ignore[arg-type]
                    variant.write_elem(name, i, item)
            else:
                raise KeyError(
                    f"variant overrides undeclared name {name!r}; declare "
                    "it in the baseline memory first"
                )
        out.append(variant)
    return out


def measure_leakage(
    program: ast.Command,
    gamma: Mapping[str, Label],
    lattice: Lattice,
    levels: Iterable[Label],
    adversary: Label,
    base_memory: Memory,
    base_environment: MachineEnvironment,
    memory_variants: Sequence[Memory],
    environment_variants: Optional[Sequence[MachineEnvironment]] = None,
    mitigate_pc: Mapping[str, Label] = None,
    validate: bool = True,
    max_steps: int = 10_000_000,
    recorder=None,
) -> LeakageResult:
    """Measure ``Q(L, lA, c, m, E)`` over an explicit variant family.

    ``levels`` is the paper's ``L``; variants may differ from
    ``base_memory`` only at levels in ``L_{lA}`` (checked unless
    ``validate=False``).  Environments default to clones of the baseline
    (the common case: the adversary knows the initial hardware state).
    An optional ``recorder`` (see :mod:`repro.telemetry`) observes every
    run of the sweep, so one metrics document can cover it all.
    """
    allowed = lattice.exclude_observable(levels, adversary)
    if validate:
        for variant in memory_variants:
            _validate_variant(base_memory, variant, gamma, lattice, allowed)

    if environment_variants is None:
        environment_variants = [base_environment]

    layout = Layout.build(program, base_memory)
    observations: Dict[Tuple, List[int]] = {}
    runs = 0
    for run_index, memory in enumerate(memory_variants):
        for environment in environment_variants:
            result = execute(
                program,
                memory.copy(),
                environment.clone(),
                layout=layout,
                mitigation=MitigationState(),
                mitigate_pc=mitigate_pc,
                max_steps=max_steps,
                recorder=recorder,
            )
            key = observation_key(
                observable_events(result.events, gamma, adversary)
            )
            observations.setdefault(key, []).append(run_index)
            runs += 1

    distinguishable = len(observations)
    bits = math.log2(distinguishable) if distinguishable else 0.0
    return LeakageResult(
        bits=bits,
        distinguishable=distinguishable,
        runs=runs,
        observations=observations,
    )
