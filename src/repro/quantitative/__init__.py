"""Quantitative security: leakage measurement, variations, bounds, entropy."""

from .bounds import (
    doubling_duration_count,
    leakage_bound,
    leakage_bound_unknown_k,
    relevant_level_count,
)
from .entropy import min_entropy_leakage, shannon_leakage
from .leakage import (
    LeakageResult,
    VariantError,
    measure_leakage,
    secret_variants,
)
from .variations import (
    Theorem2Result,
    VariationResult,
    check_low_determinism,
    relevant_projection,
    timing_variations,
    verify_theorem2,
)

__all__ = [
    "LeakageResult",
    "Theorem2Result",
    "VariantError",
    "VariationResult",
    "check_low_determinism",
    "doubling_duration_count",
    "leakage_bound",
    "leakage_bound_unknown_k",
    "measure_leakage",
    "min_entropy_leakage",
    "relevant_level_count",
    "relevant_projection",
    "secret_variants",
    "shannon_leakage",
    "timing_variations",
    "verify_theorem2",
]
