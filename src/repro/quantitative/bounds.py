"""Closed-form leakage bounds for the mitigating semantics (Sec. 7).

With the fast-doubling scheme and local penalty policy, the paper shows the
leakage from ``L`` to an adversary ``lA`` after elapsed time ``T`` is at
most::

    |L^_{lA}| * log2(K + 1) * (1 + log2 T)

where ``K`` counts the *relevant* mitigate executions in the trace (those in
low contexts with mitigation levels in ``L^``).  Intuition: each relevant
level's ``Miss`` counter is between 0 and ``log2 T`` (each increment doubles
the prediction, which cannot exceed the elapsed time), each counter value
fixes every prediction at that level, and the adversary additionally learns
at which of the ``K`` commands the counter stepped -- ``log2(K+1)`` bits per
possible counter value per level.

Corollaries implemented here:

* zero leakage when a program contains no mitigate commands (or all take
  fixed time) -- Theorem 2's corollary;
* the ``O(log^2 T)`` bound when ``K`` is unknown and conservatively bounded
  by ``T``.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..lattice import Label, Lattice


def relevant_level_count(
    lattice: Lattice, levels: Iterable[Label], adversary: Label
) -> int:
    """``|L^_{lA}|``: the size of the upward-closed varied level set."""
    return len(
        lattice.upward_closure(lattice.exclude_observable(levels, adversary))
    )


def leakage_bound(
    lattice: Lattice,
    levels: Iterable[Label],
    adversary: Label,
    elapsed: int,
    relevant_mitigations: int,
) -> float:
    """``|L^| * log2(K+1) * (1 + log2 T)`` bits.

    ``elapsed`` is the trace's total time ``T`` (clock cycles);
    ``relevant_mitigations`` is ``K``.  Returns 0.0 when ``K = 0`` -- a
    program that never mitigates (and is well-typed) leaks nothing through
    timing, per Theorem 2's corollary.
    """
    if relevant_mitigations < 0:
        raise ValueError("K must be nonnegative")
    if relevant_mitigations == 0:
        return 0.0
    closure_size = relevant_level_count(lattice, levels, adversary)
    log_t = math.log2(elapsed) if elapsed > 1 else 0.0
    return closure_size * math.log2(relevant_mitigations + 1) * (1.0 + log_t)


def leakage_bound_unknown_k(
    lattice: Lattice,
    levels: Iterable[Label],
    adversary: Label,
    elapsed: int,
) -> float:
    """The ``O(log^2 T)`` form: ``K`` conservatively bounded by ``T``."""
    return leakage_bound(
        lattice, levels, adversary, elapsed, relevant_mitigations=max(elapsed, 0)
    )


def doubling_duration_count(estimate: int, elapsed: int) -> int:
    """How many distinct padded durations one fast-doubling mitigate command
    can exhibit within elapsed time ``T``: ``1 + floor(log2(T / max(n,1)))``
    (every duration is ``max(n,1) * 2^k``)."""
    estimate = max(estimate, 1)
    if elapsed < estimate:
        return 1
    return 1 + int(math.floor(math.log2(elapsed / estimate)))
