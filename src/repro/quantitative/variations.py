"""Timing variations of mitigate commands: Definition 2, Lemma 1, Theorem 2.

Definition 2 collects, over runs whose initial memories/environments vary
only at levels in the *upward closure* ``L^_{lA}``, the distinct duration
vectors of the mitigate commands that occur in *low* contexts
(``pc(M) not in L^``) with *high* mitigation levels (``lev(M) in L^``).
Those are exactly the commands through which information from ``L`` can
reach the adversary's clock.

Lemma 1 (low-determinism) says the *identity* component of that projection
-- which mitigate commands occur, in what order -- is the same across all
such runs for well-typed programs; only durations vary.  Theorem 2 then
bounds Definition 1's leakage by ``log2`` of the number of distinct duration
vectors.  All three are executable here:

* :func:`timing_variations` -- Definition 2 over a variant family;
* :func:`check_low_determinism` -- Lemma 1 as a checker;
* :func:`verify_theorem2` -- runs Definitions 1 and 2 on the same family
  and confirms ``Q <= log2 |V|``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..lang import ast
from ..lattice import Label, Lattice
from ..machine.layout import Layout
from ..machine.memory import Memory
from ..hardware.interface import MachineEnvironment
from ..semantics.events import (
    MitigationRecord,
    mitigation_ids,
    mitigation_times,
)
from ..semantics.full import execute
from ..semantics.mitigation import MitigationState
from .leakage import LeakageResult, measure_leakage


def relevant_projection(
    records: Tuple[MitigationRecord, ...], upward: FrozenSet[Label]
) -> Tuple[MitigationRecord, ...]:
    """Definition 2's projection: low-context, high-mitigation-level records.

    Keeps records with ``pc(M) not in L^`` and ``lev(M) in L^``.
    Records lacking a pc label (program run without typing info) are treated
    as low-context -- the conservative direction.
    """
    out = []
    for record in records:
        in_low_context = record.pc_label is None or record.pc_label not in upward
        if in_low_context and record.level in upward:
            out.append(record)
    return tuple(out)


@dataclass
class VariationResult:
    """The outcome of a Definition 2 measurement."""

    variations: Set[Tuple[int, ...]]
    id_vectors: Set[Tuple[str, ...]]
    runs: int

    @property
    def count(self) -> int:
        """``|V|``: the number of distinct duration vectors."""
        return len(self.variations)

    @property
    def bits(self) -> float:
        """``log2 |V|`` -- Theorem 2's leakage bound."""
        return math.log2(self.count) if self.count else 0.0

    def __str__(self) -> str:
        return (
            f"|V| = {self.count} ({self.bits:.3f} bits) over {self.runs} runs"
        )


def _run_projected(
    program: ast.Command,
    memory: Memory,
    environment: MachineEnvironment,
    layout: Layout,
    upward: FrozenSet[Label],
    mitigate_pc: Mapping[str, Label],
    max_steps: int,
    recorder=None,
) -> Tuple[MitigationRecord, ...]:
    result = execute(
        program,
        memory.copy(),
        environment.clone(),
        layout=layout,
        mitigation=MitigationState(),
        mitigate_pc=mitigate_pc,
        max_steps=max_steps,
        recorder=recorder,
    )
    # Lemma 1's pc filter keeps only low-context records; Definition 2 then
    # additionally requires the mitigation level to sit inside L^.
    return relevant_projection(result.mitigations, upward)


def timing_variations(
    program: ast.Command,
    lattice: Lattice,
    levels: Iterable[Label],
    adversary: Label,
    base_memory: Memory,
    base_environment: MachineEnvironment,
    memory_variants: Sequence[Memory],
    environment_variants: Optional[Sequence[MachineEnvironment]] = None,
    mitigate_pc: Mapping[str, Label] = None,
    max_steps: int = 10_000_000,
    recorder=None,
) -> VariationResult:
    """Measure ``V(L, lA, c, m, E)`` over an explicit variant family.

    Per Definition 2 the variants may range over the larger set ``L^_{lA}``
    (upward closure), which the caller's family should reflect.  An optional
    ``recorder`` (see :mod:`repro.telemetry`) observes every run.
    """
    upward = lattice.upward_closure(
        lattice.exclude_observable(levels, adversary)
    )
    if environment_variants is None:
        environment_variants = [base_environment]
    layout = Layout.build(program, base_memory)
    mitigate_pc = dict(mitigate_pc or {})

    variations: Set[Tuple[int, ...]] = set()
    id_vectors: Set[Tuple[str, ...]] = set()
    runs = 0
    for memory in memory_variants:
        for environment in environment_variants:
            projected = _run_projected(
                program, memory, environment, layout, upward,
                mitigate_pc, max_steps, recorder=recorder,
            )
            variations.add(mitigation_times(projected))
            id_vectors.add(mitigation_ids(projected))
            runs += 1
    return VariationResult(
        variations=variations, id_vectors=id_vectors, runs=runs
    )


def check_low_determinism(
    program: ast.Command,
    lattice: Lattice,
    levels: Iterable[Label],
    adversary: Label,
    base_memory: Memory,
    base_environment: MachineEnvironment,
    memory_variants: Sequence[Memory],
    mitigate_pc: Mapping[str, Label] = None,
    max_steps: int = 10_000_000,
) -> List[str]:
    """Lemma 1: the projected mitigate-id vector is the same across variants.

    Returns violation strings (empty for well-typed programs).
    """
    upward = lattice.upward_closure(
        lattice.exclude_observable(levels, adversary)
    )
    layout = Layout.build(program, base_memory)
    mitigate_pc = dict(mitigate_pc or {})
    seen: Optional[Tuple[str, ...]] = None
    violations = []
    for memory in memory_variants:
        result = execute(
            program,
            memory.copy(),
            base_environment.clone(),
            layout=layout,
            mitigation=MitigationState(),
            mitigate_pc=mitigate_pc,
            max_steps=max_steps,
        )
        low_context = tuple(
            r.mit_id
            for r in result.mitigations
            if r.pc_label is None or r.pc_label not in upward
        )
        if seen is None:
            seen = low_context
        elif low_context != seen:
            violations.append(
                "Lemma1: low-context mitigate vector differs across "
                f"variants: {seen} vs {low_context}"
            )
    return violations


@dataclass
class Theorem2Result:
    """Both sides of Theorem 2 on one variant family."""

    leakage: LeakageResult
    variations: VariationResult

    @property
    def holds(self) -> bool:
        """Did ``Q <= log2 |V|`` hold on this family?"""
        return self.leakage.bits <= self.variations.bits + 1e-9

    def __str__(self) -> str:
        verdict = "holds" if self.holds else "VIOLATED"
        return (
            f"Theorem 2 {verdict}: Q = {self.leakage.bits:.3f} bits "
            f"<= log|V| = {self.variations.bits:.3f} bits"
        )


def verify_theorem2(
    program: ast.Command,
    gamma: Mapping[str, Label],
    lattice: Lattice,
    levels: Iterable[Label],
    adversary: Label,
    base_memory: Memory,
    base_environment: MachineEnvironment,
    memory_variants: Sequence[Memory],
    mitigate_pc: Mapping[str, Label] = None,
    max_steps: int = 10_000_000,
) -> Theorem2Result:
    """Measure both sides of Theorem 2 on the same family and compare.

    For an exhaustive family this is a genuine check of the theorem's
    statement on that secret space (Definition 1 and Definition 2 computed
    exactly); for sampled families both sides are lower bounds measured on
    identical runs, so the comparison remains meaningful.
    """
    levels = tuple(levels)
    leakage = measure_leakage(
        program, gamma, lattice, levels, adversary,
        base_memory, base_environment, memory_variants,
        mitigate_pc=mitigate_pc, max_steps=max_steps,
    )
    variations = timing_variations(
        program, lattice, levels, adversary,
        base_memory, base_environment, memory_variants,
        mitigate_pc=mitigate_pc, max_steps=max_steps,
    )
    return Theorem2Result(leakage=leakage, variations=variations)
