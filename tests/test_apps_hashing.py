"""The from-scratch digest: Python reference vs language implementation."""

import random

from repro.api import compile_program
from repro.lang import B, DEFAULT_LATTICE
from repro.apps.hashing import DIGEST_MOD, encode, fnv1a, hash_loop

LAT = DEFAULT_LATTICE


class TestPythonReference:
    def test_deterministic(self):
        assert fnv1a(encode("alice")) == fnv1a(encode("alice"))

    def test_distinct_inputs_distinct_digests(self):
        assert fnv1a(encode("alice")) != fnv1a(encode("alicf"))

    def test_range(self):
        for text in ("", "a", "longer input", "\0\0"):
            assert 0 <= fnv1a(encode(text)) < DIGEST_MOD

    def test_encode(self):
        assert encode("ab") == [97, 98]
        assert all(0 <= b < 256 for b in encode("ÿĀ"))


class TestLanguageLevelHash:
    def _digest_via_language(self, data):
        b = B(LAT)
        prog = hash_loop(b, "data", len(data), "digest", "j")
        compiled = compile_program(
            prog,
            gamma={"data": "L", "digest": "L", "j": "L"},
            lattice=LAT,
        )
        result = compiled.run(
            {"data": list(data), "digest": 0, "j": 0}, hardware="null"
        )
        return result.memory.read("digest")

    def test_matches_reference_fixed(self):
        data = encode("username")
        assert self._digest_via_language(data) == fnv1a(data)

    def test_matches_reference_random(self):
        rng = random.Random(42)
        for _ in range(10):
            data = [rng.randrange(256) for _ in range(rng.randrange(1, 12))]
            assert self._digest_via_language(data) == fnv1a(data)

    def test_empty_input(self):
        # A zero-length loop: digest stays at the offset basis.
        b = B(LAT)
        prog = hash_loop(b, "data", 0, "digest", "j")
        compiled = compile_program(
            prog, gamma={"data": "L", "digest": "L", "j": "L"}, lattice=LAT
        )
        result = compiled.run({"data": [0], "digest": 0, "j": 0},
                              hardware="null")
        assert result.memory.read("digest") == fnv1a([])
