"""The quantitative leakage solver (``repro.analysis.quantify``), the
mitigation-placement synthesizer (``repro tune``), and the
capacity-backed lints TL026-TL028."""

import json
import math
import os

import pytest

from repro.analysis import analyze_source
from repro.analysis.engine import DirectiveError, LintOptions
from repro.analysis.quantify import (
    deadline_span,
    quantify,
    quantify_all,
    settle_misses,
)
from repro.analysis.rules import LEAKAGE_RULE_CODES
from repro.analysis.synthesize import synthesize
from repro.cli import main
from repro.hardware.registry import REGISTRY
from repro.lang import parse
from repro.semantics.mitigation import make_scheme
from repro.typesystem.environment import SecurityEnvironment

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")
LINT_DIR = os.path.join(REPO_ROOT, "examples", "lint")
TUNE_DIR = os.path.join(REPO_ROOT, "examples", "tune")

BRANCH = (
    "if h > 0 then {\n"
    "    x := h + 1;\n"
    "    x := x * 2;\n"
    "    x := x + 3\n"
    "} else {\n"
    "    skip\n"
    "}\n"
)


def _env(**bindings):
    from repro.lang.parser import DEFAULT_LATTICE

    lattice = DEFAULT_LATTICE
    return lattice, SecurityEnvironment(
        lattice, {k: lattice[v] for k, v in bindings.items()}
    )


def _quantify(source, hardware="null", **kw):
    lattice, gamma = _env(h="H", x="H")
    program = parse(source, lattice)
    from repro.typesystem.inference import infer_labels

    infer_labels(program, gamma)
    return quantify(program, gamma, hardware=hardware, **kw), program, gamma


def codes(result):
    return [d.code for d in result.diagnostics]


class TestQuantify:
    def test_secret_branch_forks_one_bit(self):
        report, _, _ = _quantify(BRANCH)
        assert report.classes == 2
        assert report.capacity_bits == pytest.approx(1.0)
        assert not report.saturated

    def test_public_branch_does_not_fork(self):
        lattice, gamma = _env(l="L", x="L")
        program = parse(
            "if l > 0 then { x := 1 } else { x := 2;\nx := 3 }\n",
            lattice,
        )
        report = quantify(program, gamma)
        assert report.capacity_bits == pytest.approx(0.0)

    def test_generous_mitigate_collapses_to_zero(self):
        report, _, _ = _quantify(
            "mitigate(64, H) {\n" + BRANCH + "}\n"
        )
        assert report.capacity_bits == pytest.approx(0.0)
        (site,) = report.sites.values()
        assert site.deadline_classes == 1

    def test_straddling_budget_leaks_through_deadlines(self):
        report, _, _ = _quantify(
            "mitigate(8, H) {\n" + BRANCH + "}\n"
        )
        (site,) = report.sites.values()
        assert site.deadline_classes == 2
        assert report.capacity_bits == pytest.approx(1.0)
        assert any(f.kind == "deadline" for f in report.forks)

    def test_padded_interval_covers_deadlines(self):
        report, _, _ = _quantify(
            "mitigate(8, H) {\n" + BRANCH + "}\n"
        )
        # Arms pad to the 8-cycle and 16-cycle doubling deadlines (plus
        # the mitigate's own entry cost).
        assert report.padded.lo >= 8
        assert report.padded.hi >= 16

    def test_quantify_all_covers_registry(self):
        lattice, gamma = _env(h="H", x="H")
        program = parse(BRANCH, lattice)
        from repro.typesystem.inference import infer_labels

        infer_labels(program, gamma)
        reports = quantify_all(program, gamma)
        assert set(reports) == set(REGISTRY.names())
        # The exact null contract separates the arms; wide cache-model
        # intervals may overlap and legitimately merge the classes.
        assert reports["null"].capacity_bits == pytest.approx(1.0)
        for report in reports.values():
            assert report.capacity_bits >= 0.0

    def test_exceeds_budget(self):
        report, _, _ = _quantify(BRANCH)
        assert report.exceeds(0.5)
        assert not report.exceeds(1.0)
        assert not report.exceeds(2.0)

    def test_deadline_helpers(self):
        scheme = make_scheme("doubling")
        from repro.hardware.costmodel import Interval

        assert settle_misses(scheme, 8, 0, 7) == 0
        assert settle_misses(scheme, 8, 0, 8) == 1
        lo, hi = deadline_span(scheme, 8, 0, Interval(7, 16), 1 << 20)
        assert (lo, hi) == (0, 2)


class TestLeakageLints:
    """TL026-TL028 fire on their fixture and stay silent on the
    adjacent near-miss."""

    FIRING = {
        "TL026": "tl026_leakage_exceeds_budget.tl",
        "TL027": "tl027_dominated_mitigate.tl",
        "TL028": "tl028_quantum_dominates_leakage.tl",
    }
    NEAR_MISS = {
        "TL026": "near_tl026_budget_covers_capacity.tl",
        "TL027": "near_tl027_snug_budget.tl",
        "TL028": "near_tl028_single_deadline.tl",
    }

    @staticmethod
    def _analyze(name):
        path = os.path.join(LINT_DIR, name)
        with open(path) as handle:
            source = handle.read()
        return analyze_source(source, path=path, options=LintOptions())

    @pytest.mark.parametrize("code", sorted(FIRING))
    def test_fixture_fires_its_code(self, code):
        result = self._analyze(self.FIRING[code])
        assert code in codes(result)
        leaked = set(codes(result)) & set(LEAKAGE_RULE_CODES)
        assert leaked == {code}

    @pytest.mark.parametrize("code", sorted(NEAR_MISS))
    def test_near_miss_is_silent(self, code):
        result = self._analyze(self.NEAR_MISS[code])
        assert not set(codes(result)) & set(LEAKAGE_RULE_CODES)

    def test_tl027_and_tl028_carry_fixits(self):
        for code in ("TL027", "TL028"):
            result = self._analyze(self.FIRING[code])
            diag = next(d for d in result.diagnostics if d.code == code)
            assert diag.fix is not None
            assert "mitigate(" in diag.fix

    def test_budget_directive_validation(self):
        with pytest.raises(DirectiveError):
            analyze_source("// budget: lots\nskip\n")
        with pytest.raises(DirectiveError):
            analyze_source("// budget: -1\nskip\n")

    def test_bits_budget_option_overrides_directive(self):
        source = "// gamma: h=H, x=H\n// budget: 2.0\n" + BRANCH
        silent = analyze_source(source)
        assert "TL026" not in codes(silent)
        tight = analyze_source(
            source, options=LintOptions(bits_budget=0.25)
        )
        assert "TL026" in codes(tight)


class TestSynthesize:
    SOURCE = "mitigate(4096, H) {\n" + BRANCH + "}\n;\nh := x\n"

    def _program(self):
        lattice, gamma = _env(h="H", x="H")
        program = parse(self.SOURCE, lattice)
        from repro.typesystem.inference import infer_labels

        infer_labels(program, gamma)
        return program, gamma

    def test_finds_cheaper_feasible_policy(self):
        program, gamma = self._program()
        result = synthesize(program, gamma, bits_budget=0.0)
        assert result.feasible and result.improved
        assert result.best.objective < result.baseline.objective
        for model, bits in result.best.capacity.items():
            assert bits == pytest.approx(0.0), model

    def test_winner_reaudits_within_budget_on_every_model(self):
        program, gamma = self._program()
        result = synthesize(program, gamma, bits_budget=0.0)
        lattice, fresh_gamma = _env(h="H", x="H")
        winner = parse(result.best.source, lattice)
        from repro.typesystem.inference import infer_labels

        infer_labels(winner, fresh_gamma)
        for model in REGISTRY.names():
            report = quantify(winner, fresh_gamma, hardware=model)
            assert not report.exceeds(0.0), model

    def test_deterministic(self):
        program, gamma = self._program()
        first = synthesize(program, gamma, bits_budget=0.0).as_dict()
        program2, gamma2 = self._program()
        second = synthesize(program2, gamma2, bits_budget=0.0).as_dict()
        assert first == second

    def test_infeasible_unbounded_leak(self):
        lattice, gamma = _env(h="H", x="H")
        program = parse(
            "x := 0;\nwhile h > 0 do { x := x + 1;\nh := h - 1 }\n",
            lattice,
        )
        result = synthesize(program, gamma, bits_budget=0.0,
                            models=["null"])
        assert not result.feasible

    def test_spec_fragment_shape(self):
        program, gamma = self._program()
        result = synthesize(program, gamma, bits_budget=0.0,
                            models=["null"])
        fragment = result.spec_fragment(tenants=["alice"])
        assert fragment["policy"] == "quantized"
        assert fragment["quantum"] >= 1
        assert fragment["scheme"] in ("doubling", "polynomial")
        assert fragment["tenants"][0]["name"] == "alice"

    def test_as_dict_schema(self):
        program, gamma = self._program()
        doc = synthesize(program, gamma, bits_budget=0.0,
                         models=["null"]).as_dict()
        assert doc["schema"] == "repro.tune/1"
        for key in ("baseline", "best", "spec", "search", "feasible"):
            assert key in doc


class TestTuneCLI:
    FIXTURE = os.path.join(LINT_DIR, "tl028_quantum_dominates_leakage.tl")

    def test_feasible_exit_0(self, capsys):
        rc = main(["tune", self.FIXTURE, "--bits-budget", "0",
                   "--models", "null"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best:" in out and "quantum:" in out

    def test_json_document(self, capsys):
        rc = main(["tune", self.FIXTURE, "--bits-budget", "0",
                   "--models", "null", "--format", "json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.tune/1"
        assert doc["feasible"] is True
        assert doc["spec"]["policy"] == "quantized"

    def test_infeasible_exit_1(self, tmp_path, capsys):
        path = tmp_path / "leaky.tl"
        path.write_text(
            "// gamma: h=H, x=H\n"
            "x := 0;\nwhile h > 0 do { x := x + 1;\nh := h - 1 }\n"
        )
        rc = main(["tune", str(path), "--bits-budget", "0",
                   "--models", "null"])
        assert rc == 1
        assert "no feasible policy" in capsys.readouterr().out

    def test_negative_budget_exit_2(self, capsys):
        rc = main(["tune", self.FIXTURE, "--bits-budget", "-1"])
        assert rc == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_unknown_model_exit_2(self, capsys):
        rc = main(["tune", self.FIXTURE, "--bits-budget", "0",
                   "--models", "quantum-annealer"])
        assert rc == 2

    def test_service_objective_requires_spec(self, capsys):
        rc = main(["tune", self.FIXTURE, "--bits-budget", "0",
                   "--objective", "service"])
        assert rc == 2
        assert "--spec" in capsys.readouterr().err

    def test_emit_program_and_spec(self, tmp_path, capsys):
        prog = tmp_path / "tuned.tl"
        spec = tmp_path / "fragment.json"
        rc = main(["tune", self.FIXTURE, "--bits-budget", "0",
                   "--models", "null",
                   "--emit-program", str(prog),
                   "--emit-spec", str(spec)])
        assert rc == 0
        assert "mitigate(" in prog.read_text()
        fragment = json.loads(spec.read_text())
        assert fragment["policy"] == "quantized"
        capsys.readouterr()

    def test_emitted_program_reaudits_clean(self, tmp_path, capsys):
        prog = tmp_path / "tuned.tl"
        rc = main(["tune", self.FIXTURE, "--bits-budget", "0",
                   "--emit-program", str(prog)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["lint", str(prog), "--gamma", "h=H,x=H",
                   "--bits-budget", "0", "--select", "TL026"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out


class TestTuneExamples:
    """The shipped examples/tune/ programs: the synthesized policy beats
    the hand-written baseline and certifies at zero bits."""

    @pytest.mark.parametrize("name", ["password.tl", "sbox.tl"])
    def test_example_improves_over_baseline(self, name, capsys):
        path = os.path.join(TUNE_DIR, name)
        rc = main(["tune", path, "--bits-budget", "0",
                   "--format", "json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["feasible"] and doc["improved"]
        assert doc["best"]["objective"] < doc["baseline"]["objective"]
        for model, bits in doc["best"]["capacity_bits"].items():
            assert bits is not None and bits <= 0.0 + 1e-9, model
