"""End-to-end multilevel scenarios: chains, diamonds, powerset lattices.

The paper's quantitative machinery is explicitly multilevel (Sec. 6's
"novel multilevel quantitative security guarantees"); these tests exercise
it on lattices with incomparable levels, which the two-point lattice cannot
reach.
"""

import pytest

from repro import api
from repro.lattice import chain, diamond, powerset
from repro.machine import Memory
from repro.hardware import PartitionedHardware, StepKind, tiny_machine
from repro.machine.layout import AccessTrace
from repro.quantitative import (
    measure_leakage,
    secret_variants,
    verify_theorem2,
)


class TestDiamondNoninterference:
    """M1 and M2 are incomparable: neither may learn the other's secrets."""

    def setup_method(self):
        self.lat = diamond()
        self.gamma = {"m1": "M1", "m2": "M2", "low": "L", "top": "H"}

    def test_incomparable_assignment_rejected(self):
        from repro.typesystem import TypingError

        with pytest.raises(TypingError):
            api.compile_program("m2 := m1", gamma=self.gamma,
                                lattice=self.lat)

    def test_incomparable_timing_rejected(self):
        # M1-dependent timing must not reach an M2 update either.
        from repro.typesystem import TypingError

        with pytest.raises(TypingError):
            api.compile_program(
                "while m1 > 0 do { m1 := m1 - 1 }; m2 := 1",
                gamma=self.gamma, lattice=self.lat,
            )

    def test_mitigate_at_top_allows_cross_timing(self):
        cp = api.compile_program(
            "mitigate(4, H) { while m1 > 0 do { m1 := m1 - 1 } }; m2 := 1",
            gamma=self.gamma, lattice=self.lat,
        )
        # T-ASGN's end label is Gamma(m2); the point is it typechecks at all.
        assert cp.typing.end_label == self.lat["M2"]

    def test_m2_adversary_leakage_from_m1_bounded(self):
        cp = api.compile_program(
            "mitigate(4, H) { while m1 > 0 do { m1 := m1 - 1 } }; m2 := 1",
            gamma=self.gamma, lattice=self.lat,
        )
        base = Memory({"m1": 0, "m2": 0, "low": 0, "top": 0})
        variants = secret_variants(base, ({"m1": v} for v in range(16)))
        result = verify_theorem2(
            cp.program, cp.gamma, self.lat, [self.lat["M1"]],
            self.lat["M2"], base,
            PartitionedHardware(self.lat, tiny_machine()), variants,
            mitigate_pc=cp.typing.mitigate_pc,
        )
        assert result.holds
        assert result.leakage.bits <= 3  # doubling collapses 16 secrets

    def test_partitions_isolate_incomparable_levels(self):
        lat = self.lat
        env = PartitionedHardware(lat, tiny_machine())
        env.step(
            StepKind.ASSIGN,
            AccessTrace(instruction=0x400000, reads=(0x10000000,)),
            lat["M1"], lat["M1"],
        )
        fresh = PartitionedHardware(lat, tiny_machine())
        assert env.project(lat["M2"]) == fresh.project(lat["M2"])
        assert env.project(lat["L"]) == fresh.project(lat["L"])
        assert env.project(lat["M1"]) != fresh.project(lat["M1"])

    def test_m1_access_cost_ignores_m2_state(self):
        lat = self.lat
        env1 = PartitionedHardware(lat, tiny_machine())
        env2 = PartitionedHardware(lat, tiny_machine())
        # Warm M2's partition in env1 only.
        env2.step(
            StepKind.ASSIGN,
            AccessTrace(instruction=0x400000, reads=(0x10000000,)),
            lat["M2"], lat["M2"],
        )
        probe = AccessTrace(instruction=0x400008, reads=(0x10000000,))
        c1 = env1.step(StepKind.ASSIGN, probe, lat["M1"], lat["M1"])
        c2 = env2.step(StepKind.ASSIGN, probe, lat["M1"], lat["M1"])
        assert c1 == c2  # Property 6 between incomparable levels


class TestPowersetScenario:
    """Two principals a, b: {a}'s data must not reach {b}'s observers."""

    def setup_method(self):
        self.lat = powerset(["a", "b"])
        self.gamma = {
            "pub": "{}",
            "alice": "{a}",
            "bob": "{b}",
            "shared": "{a,b}",
        }

    def test_flows(self):
        cp = api.compile_program(
            "alice := alice + 1; shared := alice + bob",
            gamma=self.gamma, lattice=self.lat,
        )
        assert cp is not None

    def test_cross_principal_rejected(self):
        from repro.typesystem import TypingError

        with pytest.raises(TypingError):
            api.compile_program("bob := alice", gamma=self.gamma,
                                lattice=self.lat)

    def test_leakage_per_principal(self):
        cp = api.compile_program(
            "mitigate(4, {a,b}) { sleep(alice) }; pub := 1",
            gamma=self.gamma, lattice=self.lat,
        )
        base = Memory({"pub": 0, "alice": 0, "bob": 0, "shared": 0})
        env = PartitionedHardware(self.lat, tiny_machine())
        alice_leak = measure_leakage(
            cp.program, cp.gamma, self.lat, [self.lat["{a}"]],
            self.lat.bottom, base, env,
            secret_variants(base, ({"alice": v} for v in range(8))),
            mitigate_pc=cp.typing.mitigate_pc,
        )
        bob_leak = measure_leakage(
            cp.program, cp.gamma, self.lat, [self.lat["{b}"]],
            self.lat.bottom, base, env,
            secret_variants(base, ({"bob": v} for v in range(8))),
            mitigate_pc=cp.typing.mitigate_pc,
        )
        assert alice_leak.bits > 0  # sleep(alice) leaks about alice...
        assert bob_leak.bits == 0.0  # ...but nothing about bob


class TestChainEndToEnd:
    def test_middle_adversary_view(self):
        lat = chain(("L", "M", "H"))
        cp = api.compile_program(
            "m := l + 1; mitigate(4, H) { sleep(h) }; m2 := 2",
            gamma={"l": "L", "m": "M", "m2": "M", "h": "H"},
            lattice=lat,
        )
        base = Memory({"l": 1, "m": 0, "m2": 0, "h": 0})
        env = PartitionedHardware(lat, tiny_machine())
        # The M adversary observes m/m2 update times; H's sleep leaks
        # through the mitigate, boundedly.
        result = verify_theorem2(
            cp.program, cp.gamma, lat, [lat["H"]], lat["M"], base, env,
            secret_variants(base, ({"h": v} for v in range(32))),
            mitigate_pc=cp.typing.mitigate_pc,
        )
        assert result.holds
        assert 0 < result.leakage.bits <= result.variations.bits
