"""Deep-path tests for the partitioned design and the environment interface."""

from repro.lang import DEFAULT_LATTICE
from repro.lattice import chain
from repro.machine import AccessTrace
from repro.hardware import (
    MachineParams,
    CacheParams,
    PartitionedHardware,
    StepKind,
    TlbParams,
    tiny_machine,
)

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]
DATA = 0x1000_0000
CODE = 0x0040_0000


def trace(instr=CODE, reads=(), writes=()):
    return AccessTrace(instruction=instr, reads=tuple(reads),
                       writes=tuple(writes))


def step(env, addr, label, instr=CODE):
    return env.step(StepKind.ASSIGN, trace(instr, reads=[addr]),
                    label, label)


class TestPartitionedL2Paths:
    def _machine(self):
        # L1 tiny (1 set x 1 way), L2 roomy: easy to create L2-hit states.
        return MachineParams(
            l1_data=CacheParams(1, 1, 16, 1, "L1 Data Cache"),
            l2_data=CacheParams(8, 4, 16, 6, "L2 Data Cache"),
            l1_inst=CacheParams(1, 1, 16, 1, "L1 Inst. Cache"),
            l2_inst=CacheParams(8, 4, 16, 6, "L2 Inst. Cache"),
            data_tlb=TlbParams(1, 4, 4096, 30, "Data TLB"),
            inst_tlb=TlbParams(1, 4, 4096, 30, "Instruction TLB"),
        )

    def test_l2_hit_in_own_partition(self):
        env = PartitionedHardware(LAT, self._machine())
        step(env, DATA, L)          # install everywhere (L partition)
        step(env, DATA + 16, L)     # evict DATA from the 1-line L1
        part = env.partitions[L]
        assert not part.l1_data.lookup(DATA)
        assert part.l2_data.lookup(DATA)
        cost = step(env, DATA, L)
        # exec(1) + ifetch L1 hit (1) + data: L1 lat + L2 lat = 1 + 6.
        assert cost == 1 + 1 + 7
        assert part.l1_data.lookup(DATA)  # refilled into L1

    def test_l2_hit_in_lower_partition_serves_high_silently(self):
        env = PartitionedHardware(LAT, self._machine())
        step(env, DATA, L)
        step(env, DATA + 16, L)  # DATA now only in L's L2
        low_before = env.project(L)
        cost = step(env, DATA, H)
        assert env.project(L) == low_before  # silent L2 hit at L
        # The H access pays L1 miss + L2 hit and installs into H's L1.
        assert env.partitions[H].l1_data.lookup(DATA)
        # exec(1) + ifetch hit in L's partition (1) + data L1 lat + L2 lat.
        assert cost == 1 + 1 + 7

    def test_full_miss_evicts_both_levels_above(self):
        env = PartitionedHardware(LAT, self._machine())
        step(env, DATA, H)  # resident in H's L1+L2
        high = env.partitions[H]
        assert high.l1_data.lookup(DATA) and high.l2_data.lookup(DATA)
        step(env, DATA, L)  # the consistency move
        assert not high.l1_data.lookup(DATA)
        assert not high.l2_data.lookup(DATA)
        low = env.partitions[L]
        assert low.l1_data.lookup(DATA) and low.l2_data.lookup(DATA)

    def test_tlb_move_semantics(self):
        env = PartitionedHardware(LAT, self._machine())
        step(env, DATA, H)
        assert env.partitions[H].data_tlb.lookup(DATA)
        step(env, DATA, L)
        # The TLB entry moved down too (evicted from H, installed at L).
        assert not env.partitions[H].data_tlb.lookup(DATA)
        assert env.partitions[L].data_tlb.lookup(DATA)

    def test_high_tlb_hit_usable_from_high_context(self):
        env = PartitionedHardware(LAT, self._machine())
        step(env, DATA, H)
        # Second H access: TLB hit (no 30-cycle walk).
        cost = step(env, DATA, H)
        assert cost < 30

    def test_instruction_side_partitioned_identically(self):
        env = PartitionedHardware(LAT, self._machine())
        env.step(StepKind.SKIP, trace(instr=CODE), H, H)
        assert env.partitions[H].l1_inst.lookup(CODE)
        fresh = PartitionedHardware(LAT, self._machine())
        assert env.project(L) == fresh.project(L)
        # An L fetch of the same block moves it down.
        env.step(StepKind.SKIP, trace(instr=CODE), L, L)
        assert not env.partitions[H].l1_inst.lookup(CODE)
        assert env.partitions[L].l1_inst.lookup(CODE)

    def test_middle_level_move_in_chain(self):
        lat = chain(("L", "M", "H"))
        env = PartitionedHardware(lat, self._machine())
        step(env, DATA, lat["H"])
        step(env, DATA, lat["M"])  # moves H -> M
        assert not env.partitions[lat["H"]].holds_data(DATA)
        assert env.partitions[lat["M"]].holds_data(DATA)
        assert not env.partitions[lat["L"]].holds_data(DATA)
        # An M access does not evict from incomparable/lower partitions.
        step(env, DATA + 64, lat["L"])
        assert env.partitions[lat["M"]].holds_data(DATA)


class TestInterfaceUtilities:
    def test_view_is_cumulative(self):
        env = PartitionedHardware(LAT, tiny_machine())
        step(env, DATA, L)
        view_l = env.view(L)
        view_h = env.view(H)
        assert len(dict(view_h)) == 2  # L and H projections
        assert dict(view_h)["L"] == dict(view_l)["L"]

    def test_projected_equal(self):
        e1 = PartitionedHardware(LAT, tiny_machine())
        e2 = PartitionedHardware(LAT, tiny_machine())
        step(e1, DATA, H)
        assert e1.projected_equal(e2, L)
        assert not e1.projected_equal(e2, H)

    def test_warm_up(self):
        env = PartitionedHardware(LAT, tiny_machine())
        env.warm_up([trace(reads=[DATA]), trace(reads=[DATA + 64])], L, L)
        assert env.partitions[L].holds_data(DATA)
        assert env.partitions[L].holds_data(DATA + 64)

    def test_full_state_covers_all_levels(self):
        env = PartitionedHardware(LAT, tiny_machine())
        names = [name for name, _ in env.full_state()]
        assert names == ["L", "H"]
