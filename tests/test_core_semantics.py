"""Unit tests for the core (untimed) semantics of Fig. 2."""

import pytest

from repro.lang import parse, parse_expr
from repro.machine import Memory
from repro.semantics import (
    EvaluationError,
    STOP,
    core_step,
    eval_expr,
    eval_expr_traced,
    run_core,
)


def ev(src, **mem):
    return eval_expr(parse_expr(src), Memory(mem))


class TestExpressionEvaluation:
    def test_arithmetic(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("(1 + 2) * 3") == 9
        assert ev("10 - 4 - 3") == 3

    def test_variables(self):
        assert ev("x + y", x=2, y=3) == 5

    def test_division_truncates_toward_zero(self):
        assert ev("7 / 2") == 3
        assert ev("0 - 7 / 2") == -3  # (-7)/2 via unary composition
        assert ev("(0 - 7) / 2") == -3

    def test_division_by_zero_is_zero(self):
        assert ev("5 / 0") == 0
        assert ev("5 % 0") == 0

    def test_mod_sign_matches_c(self):
        assert ev("7 % 3") == 1
        assert ev("(0 - 7) % 3") == -1

    def test_div_mod_identity(self):
        for a in (-7, -1, 0, 3, 10):
            for b in (-3, -1, 2, 5):
                mem = Memory({"a": a, "b": b})
                q = eval_expr(parse_expr("a / b"), mem)
                r = eval_expr(parse_expr("a % b"), mem)
                assert q * b + r == a

    def test_comparisons(self):
        assert ev("3 < 5") == 1
        assert ev("5 <= 5") == 1
        assert ev("3 == 4") == 0
        assert ev("3 != 4") == 1

    def test_booleans_nonzero_is_true(self):
        assert ev("2 && 3") == 1
        assert ev("0 && 3") == 0
        assert ev("0 || 5") == 1
        assert ev("!7") == 0
        assert ev("!0") == 1

    def test_bitwise(self):
        assert ev("12 & 10") == 8
        assert ev("12 | 10") == 14
        assert ev("12 ^ 10") == 6
        assert ev("1 << 4") == 16
        assert ev("16 >> 2") == 4

    def test_negative_shift_is_identity(self):
        assert ev("8 << (0 - 1)") == 8
        assert ev("8 >> (0 - 1)") == 8

    def test_unary_minus(self):
        assert ev("-x", x=5) == -5

    def test_array_read(self):
        m = Memory({"a": [10, 20, 30], "i": 2})
        assert eval_expr(parse_expr("a[i]"), m) == 30

    def test_array_out_of_bounds(self):
        m = Memory({"a": [10], "i": 5})
        with pytest.raises(EvaluationError, match="out of bounds"):
            eval_expr(parse_expr("a[i]"), m)

    def test_traced_accesses_in_order(self):
        m = Memory({"x": 1, "y": 2, "a": [0, 0, 0]})
        _, accesses = eval_expr_traced(parse_expr("x + a[y]"), m)
        names = [(acc.name, acc.index) for acc in accesses]
        assert names == [("x", 0), ("y", 0), ("a", 2)]

    def test_no_short_circuit_accesses(self):
        # Both operands of && are evaluated so the access set is
        # value-independent (see module docstring).
        m = Memory({"x": 0, "y": 1})
        _, accesses = eval_expr_traced(parse_expr("x && y"), m)
        assert {acc.name for acc in accesses} == {"x", "y"}


class TestCoreStepping:
    def test_skip_stops(self):
        step = core_step(parse("skip"), Memory({}))
        assert step.continuation is STOP

    def test_assign(self):
        m = Memory({"x": 0})
        step = core_step(parse("x := 41 + 1"), m)
        assert m.read("x") == 42
        assert step.assigned == ("x", 42)

    def test_array_assign(self):
        m = Memory({"a": [0, 0], "i": 1})
        core_step(parse("a[i] := 9"), m)
        assert m.read_elem("a", 1) == 9

    def test_array_assign_oob(self):
        m = Memory({"a": [0], "i": 3})
        with pytest.raises(EvaluationError):
            core_step(parse("a[i] := 9"), m)

    def test_if_picks_branch(self):
        m = Memory({"h": 1, "x": 0})
        step = core_step(parse("if h then { x := 1 } else { x := 2 }"), m)
        run_core(step.continuation, m)
        assert m.read("x") == 1

    def test_if_nonzero_is_true(self):
        m = Memory({"h": -7, "x": 0})
        step = core_step(parse("if h then { x := 1 } else { x := 2 }"), m)
        run_core(step.continuation, m)
        assert m.read("x") == 1

    def test_while_unfolds(self):
        m = Memory({"x": 2})
        prog = parse("while x > 0 do { x := x - 1 }")
        run_core(prog, m)
        assert m.read("x") == 0

    def test_while_false_guard_stops(self):
        m = Memory({"x": 0})
        step = core_step(parse("while x > 0 do { x := x - 1 }"), m)
        assert step.continuation is STOP

    def test_mitigate_is_identity(self):
        # Core semantics: mitigate (e, l) c steps to c.
        m = Memory({"x": 0})
        step = core_step(parse("mitigate(5, H) { x := 1 }"), m)
        run_core(step.continuation, m)
        assert m.read("x") == 1

    def test_sleep_is_skip_untimed(self):
        m = Memory({"h": 5})
        step = core_step(parse("sleep(h)"), m)
        assert step.continuation is STOP

    def test_seq_threads(self):
        m = Memory({"x": 0, "y": 0})
        run_core(parse("x := 1; y := x + 1"), m)
        assert m.read("y") == 2

    def test_seq_preserves_remaining(self):
        m = Memory({"x": 0, "y": 0})
        step = core_step(parse("x := 1; y := 2"), m)
        assert step.continuation is not STOP
        assert m.read("x") == 1
        assert m.read("y") == 0


class TestRunCore:
    def test_factorial(self):
        src = """
        acc := 1;
        while n > 0 do { acc := acc * n; n := n - 1 }
        """
        m = Memory({"n": 5, "acc": 0})
        run_core(parse(src), m)
        assert m.read("acc") == 120

    def test_nontermination_raises(self):
        with pytest.raises(TimeoutError):
            run_core(parse("while 1 do { skip }"), Memory({}), max_steps=100)

    def test_returns_memory(self):
        m = Memory({"x": 0})
        out = run_core(parse("x := 3"), m)
        assert out is m

    def test_deterministic(self):
        src = "x := 0; while x < 10 do { x := x + 1; y := y * 2 + x }"
        m1 = Memory({"x": 0, "y": 1})
        m2 = Memory({"x": 0, "y": 1})
        run_core(parse(src), m1)
        run_core(parse(src), m2)
        assert m1 == m2
