"""The profiling layer (src/repro/telemetry/profiling.py, docs/PROFILING.md).

Four groups:

* **StreamingHistogram** -- exact below the linear threshold, bounded
  relative error above it, merge == concatenation, JSON round-trip;
* **Profiler** -- subsystem attribution, wall sections, latency
  histograms, budget burn-down, the ``repro.profile/1`` document;
* **exposition** -- the Prometheus text format and the shared text
  renderer;
* **integration** -- the interpreter and gateway seams: exact cycle
  partition when profiling is on, untouched state when off.
"""

import math
import random

import pytest

from repro.hardware import PartitionedHardware, tiny_machine
from repro.lang import DEFAULT_LATTICE
from repro.semantics.full import execute
from repro.semantics.mitigation import MitigationState
from repro.service import WorkloadSpec, serve_workload
from repro.telemetry import (
    NULL_PROFILER,
    PROFILE_SCHEMA,
    NullProfiler,
    Profiler,
    StreamingHistogram,
    prometheus_exposition,
)
from repro.telemetry.profiling import hardware_subsystem, render_profile_lines
from repro.testing import ProgramGenerator, standard_gamma
from repro.typesystem import TypingError, infer_labels, typecheck

LAT = DEFAULT_LATTICE


class TestStreamingHistogram:
    def test_exact_below_linear_threshold(self):
        hist = StreamingHistogram(sub_bits=7)
        for v in (0, 1, 63, 127):
            hist.observe(v)
        assert hist.count == 4
        assert hist.min == 0 and hist.max == 127
        assert hist.quantile(0.0) == 0
        assert hist.quantile(1.0) == 127

    def test_quantiles_match_sorted_list_within_relative_error(self):
        rng = random.Random(7)
        values = [rng.randrange(0, 1_000_000) for _ in range(5000)]
        hist = StreamingHistogram(sub_bits=7)
        for v in values:
            hist.observe(v)
        values.sort()
        for q in (0.5, 0.95, 0.99):
            exact = values[max(0, math.ceil(q * len(values)) - 1)]
            approx = hist.quantile(q)
            # Bucket lower bounds keep 7 bits of mantissa: <=0.8% low,
            # never high past the next order statistic.
            assert approx <= exact
            assert approx >= exact * (1 - 2 ** -7) - 1, (q, exact, approx)

    def test_merge_equals_concatenated_stream(self):
        rng = random.Random(11)
        left, right, combined = (StreamingHistogram() for _ in range(3))
        for i in range(2000):
            v = rng.randrange(0, 50_000)
            (left if i % 2 else right).observe(v)
            combined.observe(v)
        left.merge(right)
        assert left.count == combined.count
        assert left.total == combined.total
        assert left.counts == combined.counts
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == combined.quantile(q)

    def test_merge_rejects_mismatched_resolution(self):
        with pytest.raises(ValueError, match="sub_bits"):
            StreamingHistogram(sub_bits=7).merge(StreamingHistogram(sub_bits=5))

    def test_roundtrip_through_dict(self):
        hist = StreamingHistogram()
        for v in (3, 99, 4096, 123_456):
            hist.observe(v)
        clone = StreamingHistogram.from_dict(hist.as_dict())
        assert clone.counts == hist.counts
        assert clone.count == hist.count and clone.total == hist.total
        assert clone.min == hist.min and clone.max == hist.max
        assert clone.quantiles() == hist.quantiles()

    def test_negative_values_clamp_to_zero(self):
        hist = StreamingHistogram()
        hist.observe(-5)
        assert hist.min == 0 and hist.total == 0

    def test_empty_histogram_quantile_is_zero(self):
        assert StreamingHistogram().quantile(0.5) == 0
        assert StreamingHistogram().quantiles() == {"p50": 0, "p95": 0,
                                                    "p99": 0}

    def test_rejects_out_of_range_sub_bits(self):
        with pytest.raises(ValueError, match="sub_bits"):
            StreamingHistogram(sub_bits=17)


class TestProfiler:
    def test_cycle_and_call_attribution(self):
        prof = Profiler()
        prof.add_cycles("hardware.partitioned", 100, calls=1)
        prof.add_cycles("hardware.partitioned", 50, calls=1)
        prof.add_cycles("mitigation.padding", 10)
        assert prof.total_cycles() == 160
        assert prof.calls["hardware.partitioned"] == 2
        assert "mitigation.padding" not in prof.calls

    def test_section_times_wall_with_injected_clock(self):
        ticks = iter((1000, 4000))
        prof = Profiler(clock=lambda: next(ticks))
        with prof.section("gateway.loop"):
            pass
        assert prof.wall_ns["gateway.loop"] == 3000
        assert prof.calls["gateway.loop"] == 1

    def test_budget_burn_down(self):
        prof = Profiler()
        prof.burn("acme", 1.0, 8.0)
        prof.burn("acme", 2.5, 8.0)
        entry = prof.budgets["acme"]
        assert entry["spent_bits"] == 2.5
        assert entry["remaining_bits"] == 5.5
        assert entry["updates"] == 2
        prof.burn("acme", 99.0, 8.0)  # overspend clamps at zero remaining
        assert prof.budgets["acme"]["remaining_bits"] == 0.0

    def test_document_shape(self):
        prof = Profiler()
        prof.add_cycles("hardware.standard", 500, calls=5)
        prof.add_wall("hardware.standard", 1_000_000)
        prof.observe_latency("gateway.latency", 128)
        prof.burn("acme", 0.5, 4.0)
        doc = prof.as_dict()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["total_cycles"] == 500
        sub = doc["subsystems"]["hardware.standard"]
        assert sub["cycles"] == 500 and sub["calls"] == 5
        assert sub["cycles_per_sec"] == pytest.approx(500 * 1e9 / 1_000_000)
        lat = doc["latency"]["gateway.latency"]
        assert lat["count"] == 1 and lat["p50"] == 128
        assert doc["budgets"]["acme"]["budget_bits"] == 4.0
        # The document renders without touching the live profiler.
        assert any("hardware.standard" in line
                   for line in render_profile_lines(doc))

    def test_null_profiler_is_inert_and_shared(self):
        assert NULL_PROFILER.active is False
        assert isinstance(NULL_PROFILER, NullProfiler)
        assert Profiler.active is True

    def test_hardware_subsystem_key(self):
        env = PartitionedHardware(LAT, tiny_machine())
        assert hardware_subsystem(env) == "hardware.partitioned"


class TestExposition:
    def _profile(self):
        prof = Profiler()
        prof.add_cycles("hardware.partitioned", 343, calls=21)
        prof.add_wall("hardware.partitioned", 2_000_000)
        prof.observe_latency("gateway.latency", 100)
        prof.observe_latency("gateway.latency", 200)
        prof.burn('t"en\\ant', 0.5, 2.0)
        return prof.as_dict()

    def test_counter_families(self):
        text = prometheus_exposition(self._profile())
        assert text.endswith("\n")
        assert ("# TYPE repro_profile_cycles_total counter") in text
        assert ('repro_profile_cycles_total{subsystem="hardware.partitioned"}'
                " 343") in text
        assert ('repro_profile_wall_seconds_total'
                '{subsystem="hardware.partitioned"} 0.002') in text
        assert ('repro_profile_calls_total'
                '{subsystem="hardware.partitioned"} 21') in text

    def test_latency_summary(self):
        text = prometheus_exposition(self._profile())
        assert "# TYPE repro_profile_latency_cycles summary" in text
        assert ('repro_profile_latency_cycles{name="gateway.latency",'
                'quantile="0.5"} 100') in text
        assert ('repro_profile_latency_cycles_sum{name="gateway.latency"} '
                "300") in text
        assert ('repro_profile_latency_cycles_count{name="gateway.latency"} '
                "2") in text

    def test_budget_gauges_and_label_escaping(self):
        text = prometheus_exposition(self._profile())
        assert "# TYPE repro_profile_tenant_budget_bits gauge" in text
        assert (r'repro_profile_tenant_budget_bits{tenant="t\"en\\ant",'
                'kind="remaining"} 1.5') in text

    def test_empty_profile_renders_empty(self):
        assert prometheus_exposition(Profiler().as_dict()) == ""


def _typed_program(seed=3):
    gamma = standard_gamma(LAT)
    for offset in range(40):
        gen = ProgramGenerator(gamma, random.Random(seed + offset))
        program = gen.program()
        infer_labels(program, gamma)
        try:
            info = typecheck(program, gamma)
        except TypingError:
            continue
        return program, info, gen.memory()
    raise AssertionError("no typecheckable program in 40 draws")


class TestInterpreterSeam:
    def test_cycle_partition_equals_final_clock(self):
        program, info, memory = _typed_program()
        prof = Profiler()
        result = execute(
            program, memory.copy(),
            PartitionedHardware(LAT, tiny_machine()),
            mitigation=MitigationState(),
            mitigate_pc=info.mitigate_pc,
            profiler=prof,
        )
        assert prof.total_cycles() == result.time
        assert prof.cycles.get("interpreter.dispatch", 0) == 0
        assert prof.calls["interpreter.dispatch"] == result.steps

    def test_inactive_profiler_never_written(self):
        program, info, memory = _typed_program()
        prof = NullProfiler()
        execute(
            program, memory.copy(),
            PartitionedHardware(LAT, tiny_machine()),
            mitigation=MitigationState(),
            mitigate_pc=info.mitigate_pc,
            profiler=prof,
        )
        assert not prof.cycles and not prof.wall_ns and not prof.calls


class TestGatewaySeam:
    def _workload(self):
        return WorkloadSpec.from_dict({
            "seed": 11,
            "requests": 12,
            "policy": "quantized",
            "quantum": 2048,
            "workers": 2,
            "queue_depth": 8,
            "arrival": {"kind": "closed", "clients": 3, "think": 512},
            "tenants": [
                {"name": "alpha", "app": "login",
                 "config": {"table_size": 4}},
                {"name": "beta", "app": "password",
                 "config": {"length": 4}},
            ],
        })

    def test_gateway_attribution_latency_and_burn_down(self):
        prof = Profiler()
        result = serve_workload(self._workload(), profiler=prof)
        completed = result.completed()
        assert completed
        # Handler cycles are the sum of simulated handler run times -- the
        # same total the telemetry registry accumulates as cycles.final.
        assert prof.cycles["gateway.handlers"] == (
            result.registry.counter("cycles.final")
        )
        assert prof.calls["gateway.handlers"] == (
            result.registry.counter("runs")
        )
        # The loop section carries wall time but no simulated cycles.
        assert prof.cycles.get("gateway.loop", 0) == 0
        assert prof.wall_ns["gateway.loop"] >= 0
        # One global latency stream plus one per tenant.
        assert prof.latencies["gateway.latency"].count == len(completed)
        per_tenant = sum(
            hist.count for name, hist in prof.latencies.items()
            if name.startswith("gateway.latency.")
        )
        assert per_tenant == len(completed)
        # Every tenant's burn-down gauge is present and within budget.
        for tenant in ("alpha", "beta"):
            entry = prof.budgets[tenant]
            assert entry["budget_bits"] > 0
            assert 0 <= entry["spent_bits"] <= entry["budget_bits"]

    def test_profiling_off_does_not_perturb_service(self):
        plain = serve_workload(self._workload())
        prof = Profiler()
        profiled = serve_workload(self._workload(), profiler=prof)
        off = serve_workload(self._workload(), profiler=NullProfiler())
        assert plain.makespan == profiled.makespan == off.makespan
        assert ([r.latency for r in plain.completed()]
                == [r.latency for r in profiled.completed()]
                == [r.latency for r in off.completed()])
