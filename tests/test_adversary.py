"""The red-team adversary subsystem (src/repro/adversary, docs/ATTACKS.md)."""

import json
import math

import pytest

from repro.adversary import (
    REGISTRY,
    AttackRegistry,
    AttackRegistryError,
    AttackSpec,
    CampaignError,
    ContentionSample,
    ContentionSource,
    Probe,
    ProbeSource,
    analyze_contention,
    cell_seed,
    password_crack,
    render_campaign,
    run_campaign,
    run_cell,
    tag_forge,
    worker_seed,
)
from repro.adversary.engine import ADVERSARY_ID_BASE
from repro.service.gateway import Gateway
from repro.service.workload import WorkloadSpec


def drive(strategy, oracle):
    """Run a strategy generator against a synthetic timing oracle."""
    batch = next(strategy)
    while True:
        results = {}
        for probe in batch:
            if probe.key is None:
                continue
            values = [oracle(probe.args) for _ in range(probe.repeats)]
            results.setdefault(probe.key, []).extend(values)
        try:
            batch = strategy.send(results)
        except StopIteration as stop:
            return stop.value


def early_exit_oracle(secret, base=100, step=16):
    """Deterministic model of the early-exit compare: time grows with
    the matched prefix, and the full match skips the final mismatch
    write (so it is strictly fastest among final-position candidates)."""

    def oracle(args):
        guess = args["guess"] if "guess" in args else args["tag"]
        matched = 0
        for got, want in zip(guess, secret):
            if got != want:
                break
            matched += 1
        if matched == len(secret):
            return base + step * (len(secret) - 1) + step // 2
        return base + step * matched + step

    return oracle


class TestSeeds:
    def test_worker_seed_is_stable(self):
        assert worker_seed(7, "a:b:1") == worker_seed(7, "a:b:1")

    def test_worker_seed_separates_points(self):
        seeds = {worker_seed(7, f"attack:{p}:{c}")
                 for p in ("fifo", "rr", "quantized") for c in (1, 4)}
        assert len(seeds) == 6

    def test_cell_seed_matches_worker_seed_discipline(self):
        assert cell_seed(3, "password-crack", "fifo", 4) == worker_seed(
            3, "password-crack:fifo:4"
        )


class TestRegistry:
    def test_default_registry_contents(self):
        assert set(REGISTRY.names()) == {
            "password-crack", "password-crack-mitigated", "tag-forge",
            "contention-probe",
        }
        assert len(REGISTRY) == 4

    def test_unknown_attack_raises(self):
        with pytest.raises(AttackRegistryError, match="unknown attack"):
            REGISTRY.get("port-scan")

    def test_expected_word(self):
        spec = REGISTRY.get("password-crack")
        assert spec.expected_word("quantized") == "defeated"
        assert spec.expected_word("fifo") == "leaks"

    def test_duplicate_registration_raises(self):
        registry = AttackRegistry()
        spec = REGISTRY.get("password-crack")
        registry.register(spec)
        with pytest.raises(AttackRegistryError, match="already registered"):
            registry.register(spec)

    def test_probe_spec_requires_strategy_and_profile(self):
        registry = AttackRegistry()
        with pytest.raises(AttackRegistryError, match="strategy"):
            registry.register(AttackSpec(
                name="x", summary="", kind="probe", target_app="password",
                rehomes="", defeated_by=frozenset(), metric="observable",
                client_counts=(1,), workload=dict,
            ))

    def test_contention_spec_requires_parameters(self):
        registry = AttackRegistry()
        with pytest.raises(AttackRegistryError, match="phase parameters"):
            registry.register(AttackSpec(
                name="x", summary="", kind="contention",
                target_app="password", rehomes="", defeated_by=frozenset(),
                metric="latency", client_counts=(2,), workload=dict,
            ))

    def test_unknown_kind_raises(self):
        registry = AttackRegistry()
        with pytest.raises(AttackRegistryError, match="kind"):
            registry.register(AttackSpec(
                name="x", summary="", kind="social", target_app="password",
                rehomes="", defeated_by=frozenset(), metric="observable",
                client_counts=(1,), workload=dict,
            ))


class TestStrategies:
    def test_password_crack_recovers_against_leaky_oracle(self):
        secret = [2, 1, 3, 0]
        strategy = password_crack({"length": 4, "alphabet": 4}, None)
        findings = drive(strategy, early_exit_oracle(secret))
        assert findings.recovered == secret
        assert findings.extracted == 4
        assert findings.bits_extracted == pytest.approx(4 * math.log2(4))
        assert findings.evidence is not None
        assert findings.evidence.significant()

    def test_password_crack_extracts_nothing_from_flat_oracle(self):
        strategy = password_crack({"length": 4, "alphabet": 4}, None)
        findings = drive(strategy, lambda args: 4096)
        assert findings.recovered == []
        assert findings.extracted == 0
        assert findings.bits_extracted == 0.0
        assert not findings.evidence.significant()

    def test_tag_forge_recovers_tag_and_carries_message(self):
        import random
        target = [0xA, 0x3, 0xF]
        strategy = tag_forge(
            {"nibbles": 3, "message_len": 4}, random.Random(5)
        )
        findings = drive(strategy, early_exit_oracle(target))
        assert findings.recovered == target
        assert findings.bits_extracted == pytest.approx(3 * 4)
        assert len(findings.extra["message"]) == 4


class TestAnalyzeContention:
    @staticmethod
    def synthetic(phase_len=100, phases=4, quiet=50, burst=150, gap=10):
        samples = []
        for arrival in range(0, phases * phase_len, gap):
            phase = arrival // phase_len
            latency = burst if phase % 2 else quiet
            samples.append(ContentionSample(arrival=arrival, latency=latency))
        return samples

    def test_separated_phases_extract_one_bit_each(self):
        findings = analyze_contention(self.synthetic(), 100, 4)
        # Two analyzed phases after the two warm-up phases.
        assert findings.extracted == 2
        assert findings.bits_extracted == 2.0
        assert findings.recovered == [1]
        assert findings.evidence.significant()

    def test_flat_latency_extracts_nothing(self):
        findings = analyze_contention(
            self.synthetic(quiet=80, burst=80), 100, 4
        )
        assert findings.extracted == 0
        assert not findings.evidence.significant()

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError, match="receiver samples"):
            analyze_contention(self.synthetic(gap=99), 100, 4)


def crack_workload(policy, seed, **overrides):
    spec = REGISTRY.get("password-crack")
    workload = spec.workload()
    workload.update(policy=policy, seed=seed, quantum=4096)
    workload.update(overrides)
    return WorkloadSpec.from_dict(workload)


class TestProbeSource:
    def simple_strategy(self):
        first = yield [
            Probe(key="a", args={"guess": [0, 0, 0, 0]}),
            Probe(key="b", args={"guess": [1, 0, 0, 0]}, repeats=3),
        ]
        second = yield [Probe(key="c", args={"guess": [2, 0, 0, 0]})]
        return {"first": first, "second": second}

    def test_collects_batches_with_warmup_and_repeats(self):
        wspec = crack_workload("fifo", 11)
        gateway = Gateway(wspec)
        source = ProbeSource(
            wspec, gateway.handlers, "victim", self.simple_strategy(),
            clients=2, warmup=3, seed=11,
        )
        gateway.use_source(source).serve()
        assert source.warmup_discarded == 3
        assert source.probes_sent >= 3 + 1 + 3 + 1
        first = source.findings["first"]
        assert len(first["a"]) == 1 and len(first["b"]) == 3
        assert len(source.findings["second"]["c"]) == 1
        # Adversary ids never collide with the background generator's.
        assert ADVERSARY_ID_BASE > wspec.requests

    def test_unknown_victim_rejected(self):
        wspec = crack_workload("fifo", 11)
        gateway = Gateway(wspec)
        with pytest.raises(ValueError, match="victim"):
            ProbeSource(wspec, gateway.handlers, "nobody",
                        self.simple_strategy())

    def test_contention_source_validates_phases(self):
        wspec = crack_workload("fifo", 11)
        gateway = Gateway(wspec)
        with pytest.raises(ValueError, match="phases"):
            ContentionSource(wspec, gateway.handlers, sender="mixer",
                             receiver="victim", phases=3)


class TestCampaign:
    def test_fifo_cell_leaks_the_unmitigated_victim(self):
        cell = run_cell(REGISTRY.get("password-crack"), "fifo", 1, seed=5)
        assert cell.expected == "leaks"
        assert cell.bits_extracted > 0
        assert cell.accuracy == 1.0
        assert cell.significant
        assert not cell.within_budget  # zero budget, nonzero haul
        assert cell.ok  # leaking under fifo is the expected direction

    def test_quantized_cell_is_defeated(self):
        cell = run_cell(REGISTRY.get("password-crack"), "quantized", 1,
                        seed=5)
        assert cell.expected == "defeated"
        assert cell.bits_extracted == 0.0
        assert cell.within_budget
        assert cell.ok

    def test_mitigated_victim_holds_under_fifo(self):
        cell = run_cell(
            REGISTRY.get("password-crack-mitigated"), "fifo", 4, seed=5
        )
        assert cell.bits_extracted == 0.0
        assert cell.budget_bits > 0
        assert cell.within_budget and cell.ok

    def test_unknown_policy_raises(self):
        with pytest.raises(CampaignError, match="unknown policy"):
            run_campaign(policies=["lifo"])

    def test_unknown_attack_raises(self):
        with pytest.raises(AttackRegistryError, match="unknown attack"):
            run_campaign(attacks=["port-scan"], policies=["fifo"])

    def test_positive_control_checked_only_with_fifo(self):
        doc = run_campaign(attacks=["password-crack"],
                           policies=["quantized"], quick=True, seed=5)
        assert not doc["positive_control"]["checked"]
        assert doc["ok"] and doc["defended_ok"]

    def test_fifo_sweep_satisfies_the_positive_control(self):
        doc = run_campaign(attacks=["password-crack"], policies=["fifo"],
                           quick=True, seed=5)
        assert doc["positive_control"]["checked"]
        assert doc["positive_control"]["ok"]
        assert doc["ok"]

    def test_same_seed_identical_documents(self):
        kwargs = dict(attacks=["password-crack"],
                      policies=["fifo", "quantized"], quick=True, seed=9)
        first = run_campaign(**kwargs)
        second = run_campaign(**kwargs)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_different_seed_different_document(self):
        base = dict(attacks=["password-crack"], policies=["fifo"],
                    quick=True)
        first = run_campaign(seed=1, **base)
        second = run_campaign(seed=2, **base)
        assert json.dumps(first) != json.dumps(second)

    def test_document_shape(self):
        doc = run_campaign(attacks=["contention-probe"], policies=["fifo"],
                           seed=5)
        assert doc["schema"] == "repro.adversary/1"
        (cell,) = doc["cells"]
        assert cell["attack"] == "contention-probe"
        assert cell["metric"] == "latency"
        for key in ("advantage", "p_value", "bits_extracted",
                    "budget_bits", "within_budget", "ok"):
            assert key in cell
        # Infinite t statistics serialize as null, never as Infinity.
        assert "Infinity" not in json.dumps(doc)

    def test_render_campaign(self):
        doc = run_campaign(attacks=["password-crack"],
                           policies=["fifo", "quantized"], quick=True,
                           seed=5)
        text = render_campaign(doc)
        assert "red-team campaign" in text
        assert "leaks (expected)" in text
        assert "defeated" in text
        assert "positive control" in text
        assert "campaign: OK" in text

    def test_render_rejects_foreign_documents(self):
        with pytest.raises(CampaignError, match="repro.adversary/1"):
            render_campaign({"schema": "repro.telemetry/1"})


class TestCrossTenantIsolationUnderLoad:
    """The satellite claim: >12 closed-loop clients, quantized release,
    no cross-tenant signal -- while fifo at the same load leaks."""

    @staticmethod
    def contention(policy, senders=15):
        workload = {
            "tenants": [
                {"name": "observer", "app": "password",
                 "config": {"mitigated": True, "length": 4,
                            "budget": 512}},
                {"name": "bursty", "app": "password",
                 "config": {"mitigated": True, "length": 4,
                            "budget": 512}},
            ],
            "workers": 4, "queue_depth": 64, "requests": 1,
            "arrival": {"kind": "closed", "clients": 1, "think": 1024},
            "policy": policy, "seed": 42, "quantum": 4096,
        }
        wspec = WorkloadSpec.from_dict(workload)
        gateway = Gateway(wspec)
        source = ContentionSource(
            wspec, gateway.handlers, sender="bursty", receiver="observer",
            phases=8, phase_len=16384, think_send=512, think_recv=64,
            senders=senders, seed=99,
        )
        gateway.use_source(source).serve()
        return analyze_contention(source.samples, 16384, 8)

    def test_sixteen_clients_quantized_shows_no_signal(self):
        findings = self.contention("quantized")
        assert findings.bits_extracted == 0.0
        assert not findings.evidence.significant()

    def test_sixteen_clients_fifo_leaks_the_load_pattern(self):
        findings = self.contention("fifo")
        assert findings.bits_extracted > 0
        assert findings.evidence.significant()
