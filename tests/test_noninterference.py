"""Theorem 1: memory and machine-environment noninterference.

For well-typed programs on contract-satisfying hardware, runs from
low-equivalent memories and environments end in low-equivalent memories and
environments -- and (absent mitigate commands) with identical low
observations including event *times*.
"""

import random

import pytest

from repro.lang import DEFAULT_LATTICE, parse
from repro.lattice import chain
from repro.machine import Memory, equivalent
from repro.machine.layout import Layout
from repro.hardware import (
    NoFillHardware,
    NullHardware,
    PartitionedHardware,
    StandardHardware,
    tiny_machine,
)
from repro.semantics import execute, observable_events
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import (
    SecurityEnvironment,
    TypingError,
    infer_labels,
    typecheck,
)

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]

SECURE = [
    ("null", lambda lat: NullHardware(lat)),
    ("nofill", lambda lat: NoFillHardware(lat, tiny_machine())),
    ("partitioned", lambda lat: PartitionedHardware(lat, tiny_machine())),
]


def run_pair(program, gamma, m1, m2, env_factory, lattice,
             mitigate_pc=None):
    layout = Layout.build(program, m1)
    r1 = execute(program, m1.copy(), env_factory(lattice), layout=layout,
                 mitigate_pc=mitigate_pc)
    r2 = execute(program, m2.copy(), env_factory(lattice), layout=layout,
                 mitigate_pc=mitigate_pc)
    return r1, r2


class TestHandWrittenPrograms:
    CASES = [
        # (source, gamma-spec, secret overrides for the second memory)
        ("l := 1 [L,L]; h := h + 1 [H,H]",
         {"h": "H", "l": "L"}, {"h": 7}),
        ("if h then { g := 1 [H,H] } else { g := 2 [H,H] } [H,H]",
         {"h": "H", "g": "H"}, {"h": 1}),
        ("while h > 0 do { h := h - 1 [H,H] } [L,H]",
         {"h": "H"}, {"h": 5}),
        ("l := 5 [L,L]; if h then { g := l [H,H] } else { skip [H,H] } [H,H]",
         {"h": "H", "g": "H", "l": "L"}, {"h": 1}),
    ]

    @pytest.mark.parametrize("src,gspec,override", CASES)
    @pytest.mark.parametrize("hw_name,factory", SECURE)
    def test_low_equivalence_preserved(self, src, gspec, override,
                                       hw_name, factory):
        gamma = SecurityEnvironment(
            LAT, {k: LAT[v] for k, v in gspec.items()}
        )
        program = parse(src)
        typecheck(program, gamma)
        m1 = Memory({k: 0 for k in gspec})
        m2 = m1.copy()
        for k, v in override.items():
            m2.write(k, v)
        r1, r2 = run_pair(program, gamma, m1, m2, factory, LAT)
        assert equivalent(r1.memory, r2.memory, gamma, L)
        assert r1.environment.equivalent_to(r2.environment, L)

    @pytest.mark.parametrize("hw_name,factory", SECURE)
    def test_no_mitigate_means_identical_low_observations(self, hw_name,
                                                          factory):
        # The stronger corollary: without mitigate, even timing is equal.
        src = """
        l := 1 [L,L];
        if h then { g := l + 1 [H,H] } else { g := l [H,H] } [H,H];
        while h2 > 0 do { h2 := h2 - 1 [H,H] } [L,H]
        """
        gamma = SecurityEnvironment(
            LAT, {"l": L, "h": H, "g": H, "h2": H}
        )
        program = parse(src)
        typecheck(program, gamma)
        m1 = Memory({"l": 0, "h": 0, "g": 0, "h2": 0})
        m2 = Memory({"l": 0, "h": 1, "g": 0, "h2": 9})
        r1, r2 = run_pair(program, gamma, m1, m2, factory, LAT)
        low1 = observable_events(r1.events, gamma, L)
        low2 = observable_events(r2.events, gamma, L)
        assert low1 == low2
        # Note: total run time is NOT asserted equal -- the paper's
        # adversary does not observe termination time directly (Sec. 6.1),
        # and the high while loop legitimately varies it.

    def test_standard_hardware_breaks_the_guarantee(self):
        # The same well-typed program can leak on nopar hardware through
        # the shared cache: this is why the contract matters.  We use the
        # Sec. 2.1 shape with block-separated arrays.
        src = """
        if h then { g := la[0] [H,H] } else { g := lb[0] [H,H] } [H,H]
        """
        gamma = SecurityEnvironment(
            LAT, {"h": H, "g": H, "la": L, "lb": L}
        )
        program = parse(src)
        typecheck(program, gamma)
        m1 = Memory({"h": 0, "g": 0, "la": [1] * 8, "lb": [2] * 8})
        m2 = Memory({"h": 1, "g": 0, "la": [1] * 8, "lb": [2] * 8})
        r1, r2 = run_pair(
            program, gamma, m1, m2,
            lambda lat: StandardHardware(lat, tiny_machine()), LAT,
        )
        # The final environments differ at bottom: a coresident adversary
        # probing the shared cache distinguishes the secret.
        assert not r1.environment.equivalent_to(r2.environment, L)


class TestRandomizedPrograms:
    @pytest.mark.parametrize("hw_name,factory", SECURE)
    @pytest.mark.parametrize("lattice_maker", [
        lambda: LAT, lambda: chain(("L", "M", "H"))
    ])
    def test_theorem1_on_random_programs(self, hw_name, factory,
                                         lattice_maker):
        lattice = lattice_maker()
        gamma = standard_gamma(lattice)
        checked = 0
        for seed in range(30):
            rng = random.Random(seed * 7919)
            gen = ProgramGenerator(
                gamma, rng,
                GeneratorConfig(max_depth=2, max_block_length=3),
            )
            program = gen.program()
            infer_labels(program, gamma)
            try:
                info = typecheck(program, gamma)
            except TypingError:
                continue
            checked += 1
            for adversary in lattice.levels():
                m1, m2 = gen.memory_pair(adversary)
                r1, r2 = run_pair(
                    program, gamma, m1, m2, factory, lattice,
                    mitigate_pc=info.mitigate_pc,
                )
                assert equivalent(r1.memory, r2.memory, gamma, adversary), (
                    f"seed {seed}: memories diverged at {adversary}"
                )
                assert r1.environment.equivalent_to(
                    r2.environment, adversary
                ), f"seed {seed}: environments diverged at {adversary}"
        assert checked >= 25  # the generator should rarely miss

    @pytest.mark.parametrize("hw_name,factory", SECURE)
    def test_mitigate_free_programs_time_deterministic(self, hw_name,
                                                       factory):
        # Without mitigate, low observations (with times) must coincide.
        gamma = standard_gamma(LAT)
        for seed in range(20):
            rng = random.Random(seed * 104729)
            gen = ProgramGenerator(
                gamma, rng,
                GeneratorConfig(max_depth=2, max_block_length=3,
                                allow_mitigate=False),
            )
            program = gen.program()
            infer_labels(program, gamma)
            try:
                typecheck(program, gamma)
            except TypingError:
                continue
            m1, m2 = gen.memory_pair(L)
            r1, r2 = run_pair(program, gamma, m1, m2, factory, LAT)
            low1 = observable_events(r1.events, gamma, L)
            low2 = observable_events(r2.events, gamma, L)
            assert low1 == low2, f"seed {seed}: low observations diverged"
