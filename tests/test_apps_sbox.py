"""The S-box cipher case study and the prime-and-probe attack on it."""

import random

import pytest

from repro.apps.sbox_cipher import (
    KEY_LENGTH,
    SBOX_SIZE,
    SboxCipher,
    random_key,
    reference_encrypt,
    standard_sbox,
)
from repro.attacks.sbox_attack import recover_key_byte
from repro.typesystem import TypingError, typecheck

RNG = random.Random(2012)
KEY = random_key(RNG)
PLAINTEXTS = [RNG.randrange(SBOX_SIZE) for _ in range(8)]


class TestCipherBasics:
    def test_sbox_is_permutation(self):
        table = standard_sbox()
        assert sorted(table) == list(range(SBOX_SIZE))

    def test_sbox_deterministic(self):
        assert standard_sbox() == standard_sbox()

    def test_reference_encrypt(self):
        out = reference_encrypt([1] * KEY_LENGTH, [2] * 16, 4)
        sbox = standard_sbox()
        assert out == [sbox[3]] * 4

    @pytest.mark.parametrize("hardware", ["null", "partitioned"])
    def test_language_matches_reference(self, hardware):
        cipher = SboxCipher(length=16, mitigated=True, budget=50)
        plaintext = [RNG.randrange(SBOX_SIZE) for _ in range(16)]
        ctext, _ = cipher.encrypt_and_check(KEY, plaintext,
                                            hardware=hardware)
        assert ctext == reference_encrypt(KEY, plaintext, 16)

    def test_length_wraps_key(self):
        cipher = SboxCipher(length=20, mitigated=False)
        plaintext = list(range(16))
        result = cipher.run(KEY, plaintext, hardware="null")
        out = [result.memory.read_elem("ctext", i) for i in range(20)]
        assert out == reference_encrypt(KEY, plaintext, 20)

    def test_bad_key_length(self):
        cipher = SboxCipher()
        with pytest.raises(ValueError):
            cipher.memory([1, 2, 3], [0] * 16)

    def test_bad_sbox(self):
        with pytest.raises(ValueError):
            SboxCipher(sbox=[0, 1, 2])


class TestTypeDiscipline:
    def test_mitigated_typechecks(self):
        cipher = SboxCipher(mitigated=True)
        info = typecheck(cipher.program, cipher.gamma)
        assert "encrypt" in info.mitigate_pc

    def test_unmitigated_rejected(self):
        cipher = SboxCipher(mitigated=False)
        with pytest.raises(TypingError):
            typecheck(cipher.program, cipher.gamma)

    def test_lookup_carries_high_write_label(self):
        # The secret-indexed lookup must run with a high write label (the
        # element address carries key bits into cache state).
        from repro.lang import ArrayAssign, labeled_commands

        cipher = SboxCipher(mitigated=True)
        stores = [
            c for c in labeled_commands(cipher.program)
            if isinstance(c, ArrayAssign) and c.array == "ctext"
        ]
        assert stores
        high = cipher.lattice["H"]
        assert all(c.write_label == high for c in stores)


class TestCacheAttack:
    def test_attack_succeeds_on_nopar(self):
        cipher = SboxCipher(length=1, mitigated=True)
        result = recover_key_byte(cipher, KEY, PLAINTEXTS, hardware="nopar")
        # Line granularity: the top 5 bits are recoverable, the bottom
        # 3 are not (32-byte lines, 4-byte entries).
        assert result.bits_learned() >= 5.0
        assert (KEY[0] >> 3) in {c >> 3 for c in result.candidates}
        assert KEY[0] in result.candidates  # never excludes the truth

    @pytest.mark.parametrize("hardware", ["nofill", "partitioned"])
    def test_attack_blind_on_secure_hardware(self, hardware):
        cipher = SboxCipher(length=1, mitigated=True)
        result = recover_key_byte(cipher, KEY, PLAINTEXTS,
                                  hardware=hardware)
        assert not result.learned_anything
        assert result.bits_learned() == 0.0

    def test_attack_on_other_byte_index(self):
        cipher = SboxCipher(length=2, mitigated=True)
        result = recover_key_byte(cipher, KEY, PLAINTEXTS, byte_index=1,
                                  hardware="nopar")
        # Position 0's lookup adds noise; the truth must still survive.
        assert KEY[1] in result.candidates

    def test_attack_deterministic(self):
        cipher = SboxCipher(length=1, mitigated=True)
        r1 = recover_key_byte(cipher, KEY, PLAINTEXTS, hardware="nopar")
        r2 = recover_key_byte(cipher, KEY, PLAINTEXTS, hardware="nopar")
        assert r1.candidates == r2.candidates


class TestTimingMitigation:
    def test_mitigated_encryption_time_constant(self):
        # With mitigation, encryption latency is secret-independent even
        # though the access pattern varies.
        cipher = SboxCipher(length=8, mitigated=True, budget=2000)
        times = set()
        for seed in range(5):
            key = random_key(random.Random(seed))
            r = cipher.run(key, [3] * 16, hardware="partitioned")
            times.add(r.time)
        assert len(times) == 1

    def test_unmitigated_latency_can_vary_with_key(self):
        # On nopar, different keys touch different line sets: collisions
        # with already-cached lines make latency key-dependent.
        cipher = SboxCipher(length=8, mitigated=False)
        times = set()
        for seed in range(8):
            key = random_key(random.Random(seed))
            r = cipher.run(key, [3] * 16, hardware="nopar")
            times.add(r.time)
        assert len(times) > 1
