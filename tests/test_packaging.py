"""Packaging and public-surface guards.

Keep the documented API real: every ``__all__`` name must resolve, every
module must import cleanly, and the documentation must reference only files
and benches that exist.
"""

import importlib
import os
import pkgutil
import re

import pytest

import repro

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def _all_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        out.append(info.name)
    return out


class TestImportSurface:
    @pytest.mark.parametrize("module_name", _all_modules())
    def test_module_imports(self, module_name):
        importlib.import_module(module_name)

    @pytest.mark.parametrize("module_name", [
        "repro", "repro.lattice", "repro.lang", "repro.machine",
        "repro.semantics", "repro.hardware", "repro.typesystem",
        "repro.quantitative", "repro.apps", "repro.attacks",
    ])
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_version(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_every_module_has_docstring(self):
        for module_name in _all_modules():
            module = importlib.import_module(module_name)
            assert module.__doc__, f"{module_name} lacks a module docstring"


class TestDocsConsistency:
    def _read(self, name):
        with open(os.path.join(REPO_ROOT, name)) as handle:
            return handle.read()

    def test_design_mentions_only_existing_modules(self):
        text = self._read("DESIGN.md")
        for match in re.findall(r"`((?:lattice|lang|machine|semantics|"
                                r"hardware|typesystem|quantitative|apps|"
                                r"attacks)/[a-z_]+\.py)`", text):
            path = os.path.join(REPO_ROOT, "src", "repro", match)
            assert os.path.exists(path), f"DESIGN.md references {match}"

    def test_design_mentions_only_existing_benches(self):
        text = self._read("DESIGN.md") + self._read("EXPERIMENTS.md")
        for match in re.findall(r"`?(bench_[a-z0-9_]+\.py)`?", text):
            path = os.path.join(REPO_ROOT, "benchmarks", match)
            assert os.path.exists(path), f"docs reference {match}"

    def test_readme_examples_exist(self):
        text = self._read("README.md")
        for match in re.findall(r"`examples/([a-z_]+\.py)`", text):
            path = os.path.join(REPO_ROOT, "examples", match)
            assert os.path.exists(path), f"README references {match}"

    def test_every_bench_documented_in_experiments(self):
        text = self._read("EXPERIMENTS.md")
        benches = [
            name for name in os.listdir(os.path.join(REPO_ROOT,
                                                     "benchmarks"))
            if name.startswith("bench_") and name.endswith(".py")
        ]
        for bench in benches:
            assert bench in text, f"{bench} missing from EXPERIMENTS.md"

    def test_experiment_results_exist_for_each_bench(self):
        results = os.path.join(REPO_ROOT, "benchmarks", "results")
        if not os.path.isdir(results):
            pytest.skip("benches not yet run in this checkout")
        produced = set(os.listdir(results))
        # Every results file is a Report's .txt, a telemetry metrics
        # document, a Chrome trace-event timeline (schema
        # repro.telemetry/1, see docs/TELEMETRY.md), or a red-team
        # campaign document (repro.adversary/1, see docs/ATTACKS.md).
        assert produced
        for name in produced:
            assert (name.endswith(".txt")
                    or name.endswith("_metrics.json")
                    or name.endswith("_trace.json")
                    or name.endswith("_campaign.json"))
        # Each JSON artifact sits next to its report.
        for name in produced:
            if name.endswith("_metrics.json"):
                assert name.replace("_metrics.json", ".txt") in produced
            elif name.endswith("_trace.json"):
                assert name.replace("_trace.json", ".txt") in produced
            elif name.endswith("_campaign.json"):
                assert name.replace("_campaign.json", ".txt") in produced
