"""The verification campaign: case checking, serialization, replay."""

import json
from pathlib import Path

import pytest

from repro.hardware import REGISTRY, NullHardware, StepKind, tiny_machine
from repro.hardware.contract import Stimulus, Violation
from repro.hardware.verify import (
    CODE_POOL,
    COUNTEREXAMPLE_SCHEMA,
    ContractCase,
    campaign_point,
    case_from_dict,
    case_to_dict,
    check_case,
    counterexample_to_dict,
    lattice_from_dict,
    lattice_to_dict,
    measure_end_to_end,
    point_seed,
    replay_counterexample,
    run_campaign,
    stimulus_from_dict,
    stimulus_to_dict,
)
from repro.lattice import diamond, two_point
from repro.machine.layout import AccessTrace

GOLDEN = Path(__file__).parent / "golden" / "counterexample_writeback.json"


def _stim(kind, instruction, read, write, reads=(), writes=(), taken=None):
    return Stimulus(
        kind,
        AccessTrace(
            instruction=instruction, reads=reads, writes=writes, taken=taken
        ),
        read,
        write,
    )


class TestCheckCase:
    def test_null_hardware_passes_any_case(self):
        lattice = two_point()
        low, high = lattice.bottom, lattice.top
        case = ContractCase(
            level=low,
            shared=(_stim(StepKind.ASSIGN, CODE_POOL[0], low, low,
                          reads=(0x1000_0000,)),),
            divergent=(_stim(StepKind.ASSIGN, CODE_POOL[1], high, high,
                             writes=(0x1000_0018,)),),
            probe=_stim(StepKind.ASSIGN, CODE_POOL[0], low, low,
                        reads=(0x1000_0000,)),
        )
        assert check_case(lambda: NullHardware(lattice), lattice, case) is None

    def test_hand_built_bus_case_breaks_p6(self):
        lattice = two_point()
        low, high = lattice.bottom, lattice.top
        spec = REGISTRY.get("bus")
        # One high step enqueues bus traffic; the low probe stalls behind it.
        case = ContractCase(
            level=low,
            shared=(),
            divergent=(_stim(StepKind.SKIP, CODE_POOL[0], high, high),),
            probe=_stim(StepKind.SKIP, CODE_POOL[0], low, low),
        )
        violation = check_case(
            lambda: spec.make(lattice, tiny_machine()), lattice, case
        )
        assert violation is not None
        assert violation.prop == "P6-read-label"

    def test_hand_built_speculative_case_breaks_p6(self):
        lattice = two_point()
        low, high = lattice.bottom, lattice.top
        spec = REGISTRY.get("speculative")
        # The divergence phase trains the shared predictor taken; the low
        # probe branch then mispredicts only on the trained environment.
        train = _stim(StepKind.BRANCH, CODE_POOL[0], low, high, taken=True)
        case = ContractCase(
            level=low,
            shared=(),
            divergent=(train, train),
            probe=_stim(StepKind.BRANCH, CODE_POOL[0], low, low, taken=False),
        )
        violation = check_case(
            lambda: spec.make(lattice, tiny_machine()), lattice, case
        )
        assert violation is not None
        assert violation.prop == "P6-read-label"


class TestSerialization:
    def test_lattice_round_trip(self):
        for lattice in (two_point(), diamond()):
            twin = lattice_from_dict(lattice_to_dict(lattice))
            assert [l.name for l in twin.levels()] == [
                l.name for l in lattice.levels()
            ]
            for a in lattice.levels():
                for b in lattice.levels():
                    assert a.flows_to(b) == twin[a.name].flows_to(twin[b.name])

    def test_stimulus_round_trip(self):
        lattice = two_point()
        stim = _stim(
            StepKind.BRANCH, CODE_POOL[2], lattice.bottom, lattice.top,
            reads=(0x1000_0000, 0x1000_0018), writes=(0x1000_0030,),
            taken=True,
        )
        doc = json.loads(json.dumps(stimulus_to_dict(stim)))
        assert stimulus_from_dict(doc, lattice) == stim

    def test_case_round_trip(self):
        lattice = two_point()
        low, high = lattice.bottom, lattice.top
        case = ContractCase(
            level=low,
            shared=(_stim(StepKind.SKIP, CODE_POOL[0], low, low),),
            divergent=(_stim(StepKind.ASSIGN, CODE_POOL[1], high, high,
                             writes=(0x1000_0000,)),),
            probe=_stim(StepKind.ASSIGN, CODE_POOL[0], low, low,
                        reads=(0x1000_0000,)),
        )
        assert case_from_dict(case_to_dict(case), lattice) == case

    def test_counterexample_survives_json(self):
        lattice = two_point()
        low = lattice.bottom
        case = ContractCase(
            level=low, shared=(), divergent=(),
            probe=_stim(StepKind.SKIP, CODE_POOL[0], low, low),
        )
        doc = counterexample_to_dict(
            model="null", lattice_point="two_point", param_point="tiny",
            seed=42, violation=Violation("P6-read-label", "demo"),
            case=case, lattice=lattice,
        )
        twin = json.loads(json.dumps(doc))
        assert twin["schema"] == COUNTEREXAMPLE_SCHEMA
        assert twin["seed"] == 42
        restored = case_from_dict(
            twin["case"], lattice_from_dict(twin["lattice"])
        )
        assert restored.probe.kind is StepKind.SKIP

    def test_replay_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="schema"):
            replay_counterexample({"schema": "something/else"})


class TestGoldenCounterexample:
    """The stored write-back counterexample must keep reproducing.

    This is the regression net for the whole replay path: JSON -> lattice ->
    case -> fresh environments -> the exact violation the campaign found.
    """

    def test_golden_writeback_replays_to_p6(self):
        violation = replay_counterexample(GOLDEN)
        assert violation is not None
        assert violation.prop == "P6-read-label"

    def test_golden_file_matches_schema(self):
        doc = json.loads(GOLDEN.read_text())
        assert doc["schema"] == COUNTEREXAMPLE_SCHEMA
        assert doc["model"] == "writeback"
        assert doc["violation"]["prop"] == "P6-read-label"


class TestCampaignPoint:
    def test_finds_bus_violation_and_is_reproducible(self):
        lattice = two_point()
        spec = REGISTRY.get("bus")
        factory = lambda: spec.make(lattice, tiny_machine())
        first = campaign_point(factory, lattice, max_examples=60, seed=3)
        assert first["violation"] is not None
        assert first["violation"].prop == "P6-read-label"
        # Same seed, same generation: the shrunk case comes back identical.
        second = campaign_point(factory, lattice, max_examples=60, seed=3)
        assert second["case"] == first["case"]

    def test_database_replays_stored_failures(self, tmp_path):
        # The speculative leak is provably NOT found in 2 fresh examples at
        # seed 0 (the CLI failure-path test depends on exactly that), so a
        # detection on the second run can only come from the persisted
        # counterexample -- the CI artifact story.
        first = run_campaign(
            models=["speculative"], max_examples=300, seed=0,
            quantify=False, database_dir=tmp_path,
        )
        assert first.ok()
        second = run_campaign(
            models=["speculative"], max_examples=2, seed=0,
            quantify=False, database_dir=tmp_path,
        )
        assert second.ok()
        (verdict,) = second.verdicts
        assert verdict.detected

    def test_database_drops_stale_entries(self, tmp_path):
        from hypothesis.database import DirectoryBasedExampleDatabase

        # Store the golden write-back counterexample under the *null*
        # model's key: it cannot reproduce there, so the campaign must
        # discard it and fall back to fresh generation.
        doc = json.loads(GOLDEN.read_text())
        doc["model"] = "null"
        key = b"repro.verify-hw/1:null:two_point:tiny"
        database = DirectoryBasedExampleDatabase(str(tmp_path))
        database.save(key, json.dumps(doc).encode())
        result = run_campaign(
            models=["null"], lattice_points=["two_point"],
            max_examples=5, seed=0, quantify=False, database_dir=tmp_path,
        )
        assert result.ok()
        assert list(database.fetch(key)) == []

    def test_point_seed_is_stable_and_point_specific(self):
        a = point_seed(0, "bus", "two_point", "tiny")
        assert a == point_seed(0, "bus", "two_point", "tiny")
        assert a != point_seed(0, "bus", "two_point", "scaled8")
        assert a != point_seed(1, "bus", "two_point", "tiny")


class TestCampaign:
    def test_secure_subset_passes(self):
        result = run_campaign(
            models=["null"], max_examples=15, seed=0, quantify=False
        )
        assert result.ok()
        assert {v.lattice_point for v in result.verdicts} == {
            "two_point", "chain3", "diamond"
        }
        assert all(not v.detected for v in result.verdicts)

    def test_insecure_point_writes_replayable_counterexample(self, tmp_path):
        result = run_campaign(
            models=["bus"], max_examples=60, seed=3, quantify=False,
            counterexample_dir=tmp_path,
        )
        assert result.ok()
        (verdict,) = result.verdicts
        assert verdict.detected
        path = tmp_path / "counterexample_bus_two_point_tiny.json"
        assert path.exists()
        assert replay_counterexample(path) is not None

    def test_undetected_insecure_model_is_a_surprise(self):
        # A spec that *claims* to leak but is actually the null design can
        # never be detected: the campaign must flag it, not quietly pass.
        from repro.hardware.registry import HardwareRegistry, HardwareSpec

        registry = HardwareRegistry()
        registry.register(HardwareSpec(
            name="imposter",
            factory=lambda lattice, params=None: NullHardware(lattice),
            summary="claims a leak it does not have",
            expected_secure=False,
            violates=("P6-read-label",),
            lattice_points=("two_point",),
        ))
        result = run_campaign(
            registry, max_examples=20, seed=0, quantify=False
        )
        assert not result.ok()
        (verdict,) = result.surprises()
        assert verdict.model == "imposter"
        assert not verdict.detected

    def test_leaky_model_claiming_secure_is_a_surprise(self):
        # The other direction: an expected-secure spec wrapping the bus
        # model must be falsified, and the falsification is a surprise.
        from repro.hardware.registry import HardwareRegistry, HardwareSpec
        from repro.hardware import SharedBusHardware

        registry = HardwareRegistry()
        registry.register(HardwareSpec(
            name="optimist",
            factory=SharedBusHardware,
            summary="ships the shared bus, claims the contract",
            expected_secure=True,
            lattice_points=("two_point",),
        ))
        result = run_campaign(
            registry, max_examples=60, seed=3, quantify=False
        )
        assert not result.ok()
        (verdict,) = result.surprises()
        assert verdict.model == "optimist"
        assert verdict.detected


class TestEndToEnd:
    def test_partitioned_hardware_yields_one_probe_class(self):
        leak = measure_end_to_end(REGISTRY.get("partitioned"), secrets=4)
        assert leak.probe_classes == 1
        assert leak.probe_bits == 0.0
        # The unmitigated victims still leak on the direct channel --
        # that is the mitigation's job, not the hardware's.
        assert leak.direct_classes > 1

    def test_standard_hardware_leaks_through_probes(self):
        leak = measure_end_to_end(REGISTRY.get("standard"), secrets=4)
        assert leak.probe_classes > 1
        assert leak.probe_bits > 0.0

    def test_as_dict_is_json_safe(self):
        leak = measure_end_to_end(REGISTRY.get("null"), secrets=2)
        doc = json.loads(json.dumps(leak.as_dict()))
        assert doc["secrets"] == 2
        assert doc["probe_classes"] == 1
