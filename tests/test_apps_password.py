"""Early-exit password comparison: the direct channel hardware cannot fix."""

import random

import pytest

from repro.apps.password import PasswordChecker
from repro.attacks.prefix_attack import recover_password
from repro.semantics import MitigationState
from repro.typesystem import TypingError, typecheck

LENGTH = 5
ALPHABET = 8
SECRET = [3, 7, 1, 0, 5]


@pytest.fixture(scope="module")
def unmitigated():
    return PasswordChecker(length=LENGTH, mitigated=False)


@pytest.fixture(scope="module")
def mitigated():
    return PasswordChecker(length=LENGTH, mitigated=True, budget=400)


class TestFunctional:
    def test_correct_password_matches(self, unmitigated):
        assert unmitigated.matches(SECRET, SECRET)

    def test_wrong_password_rejected(self, unmitigated):
        assert not unmitigated.matches(SECRET, [0] * LENGTH)

    def test_prefix_only_rejected(self, unmitigated):
        almost = list(SECRET)
        almost[-1] = (almost[-1] + 1) % ALPHABET
        assert not unmitigated.matches(SECRET, almost)

    def test_mitigated_functionally_identical(self, mitigated):
        assert mitigated.matches(SECRET, SECRET)
        assert not mitigated.matches(SECRET, [0] * LENGTH)

    def test_length_validation(self, unmitigated):
        with pytest.raises(ValueError):
            unmitigated.memory(SECRET, [1, 2])


class TestTypeDiscipline:
    def test_unmitigated_ill_typed(self, unmitigated):
        with pytest.raises(TypingError):
            typecheck(unmitigated.program, unmitigated.gamma)

    def test_mitigated_typechecks(self, mitigated):
        info = typecheck(mitigated.program, mitigated.gamma)
        assert "compare" in info.mitigate_pc


class TestPrefixTiming:
    def test_time_grows_with_matching_prefix(self, unmitigated):
        times = []
        for prefix_len in range(LENGTH):
            guess = SECRET[:prefix_len] + [
                (SECRET[i] + 1) % ALPHABET for i in range(prefix_len, LENGTH)
            ]
            times.append(unmitigated.run(SECRET, guess,
                                         hardware="null").time)
        assert times == sorted(times)
        assert len(set(times)) == LENGTH


class TestAdaptiveAttack:
    @pytest.mark.parametrize("hardware", ["null", "nopar", "nofill",
                                          "partitioned"])
    def test_attack_succeeds_everywhere_unmitigated(self, unmitigated,
                                                    hardware):
        # A direct channel: the paper's secure hardware does NOT stop it.
        result = recover_password(unmitigated, SECRET, alphabet=ALPHABET,
                                  hardware=hardware)
        assert result.succeeded
        assert result.guesses_used == LENGTH * ALPHABET

    def test_attack_is_linear_not_exponential(self, unmitigated):
        result = recover_password(unmitigated, SECRET, alphabet=ALPHABET,
                                  hardware="null")
        assert result.guesses_used == LENGTH * ALPHABET
        assert result.guesses_used < ALPHABET ** LENGTH

    def test_mitigation_defeats_the_attack(self, mitigated):
        result = recover_password(mitigated, SECRET, alphabet=ALPHABET,
                                  hardware="partitioned")
        assert not result.succeeded
        # The recovered string is essentially unrelated to the secret.
        assert result.correct_prefix <= 1

    def test_mitigated_response_time_flat(self, mitigated):
        rng = random.Random(0)
        times = set()
        for _ in range(10):
            guess = [rng.randrange(ALPHABET) for _ in range(LENGTH)]
            r = mitigated.run(SECRET, guess, hardware="partitioned")
            times.add(next(e.time for e in r.events if e.name == "done"))
        # Correct-prefix variation collapses onto the padded duration.
        assert len(times) == 1

    def test_mitigated_leak_bounded_not_zero(self, mitigated):
        # With a deliberately tiny budget the doubling schedule still only
        # admits O(log) distinct durations across all prefixes.
        tiny = PasswordChecker(length=LENGTH, mitigated=True, budget=1)
        durations = set()
        for prefix_len in range(LENGTH + 1):
            guess = SECRET[:prefix_len] + [
                (SECRET[i] + 1) % ALPHABET
                for i in range(prefix_len, LENGTH)
            ]
            guess = guess[:LENGTH]
            r = tiny.run(SECRET, guess, hardware="null",
                         mitigation=MitigationState())
            durations.add(r.mitigations[0].duration)
        assert len(durations) <= 3
