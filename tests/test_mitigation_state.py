"""Unit tests for the predictive-mitigation runtime (schemes, policies)."""

import pytest

from repro.lang import DEFAULT_LATTICE
from repro.lattice import chain
from repro.semantics import DoublingScheme, MitigationState, PolynomialScheme

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]


class TestDoublingScheme:
    def test_formula(self):
        # predict(n, l) = max(n, 1) * 2^Miss[l]
        s = DoublingScheme()
        assert s.predict(10, 0) == 10
        assert s.predict(10, 3) == 80
        assert s.predict(0, 2) == 4  # max(n,1)
        assert s.predict(-5, 0) == 1

    def test_polynomial(self):
        s = PolynomialScheme(power=2)
        assert s.predict(10, 0) == 10
        assert s.predict(10, 3) == 160
        with pytest.raises(ValueError):
            PolynomialScheme(power=0)


class TestSettle:
    def test_no_miss_under_prediction(self):
        st = MitigationState()
        assert st.settle(100, H, elapsed=40) == 100
        assert st.misses(H) == 0

    def test_exact_boundary_is_miss(self):
        st = MitigationState()
        assert st.settle(100, H, elapsed=100) == 200
        assert st.misses(H) == 1

    def test_multiple_doublings(self):
        st = MitigationState()
        assert st.settle(10, H, elapsed=75) == 80
        assert st.misses(H) == 3

    def test_counters_monotone(self):
        st = MitigationState()
        st.settle(10, H, elapsed=100)
        misses = st.misses(H)
        st.settle(10, H, elapsed=5)
        assert st.misses(H) == misses  # never decreases


class TestPenaltyPolicies:
    def test_local_policy_isolates_levels(self):
        lat = chain(("L", "M", "H"))
        st = MitigationState(policy="local")
        st.settle(10, lat["H"], elapsed=100)
        assert st.misses(lat["H"]) == 4
        assert st.misses(lat["M"]) == 0
        assert st.predict(10, lat["M"]) == 10

    def test_global_policy_shares_counter(self):
        lat = chain(("L", "M", "H"))
        st = MitigationState(policy="global")
        st.settle(10, lat["H"], elapsed=100)
        assert st.misses(lat["M"]) == st.misses(lat["H"]) == 4

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            MitigationState(policy="exotic")


class TestStatePlumbing:
    def test_copy_independent(self):
        st = MitigationState()
        st.settle(10, H, elapsed=50)
        twin = st.copy()
        twin.settle(10, H, elapsed=1000)
        assert st.misses(H) < twin.misses(H)

    def test_snapshot(self):
        st = MitigationState()
        st.settle(10, H, elapsed=25)
        assert st.snapshot() == {H: 2}

    def test_custom_scheme_threaded(self):
        st = MitigationState(scheme=PolynomialScheme(1))
        assert st.settle(10, H, elapsed=25) == 30  # 10*(miss+1): 10,20,30
        assert st.misses(H) == 2
