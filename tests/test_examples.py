"""Smoke tests: every shipped example runs clean and says what it promises.

The examples are part of the public deliverable; these tests keep them from
rotting as the library evolves.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

CASES = [
    ("quickstart.py", ["rejected, as it should be", "Theorem 2 promises"]),
    ("web_login.py", ["usernames harvested", "Logins still work: state=1",
                      "Service audit: OK"]),
    ("rsa_decryption.py", ["ATTACK SUCCEEDED", "attack defeated",
                           "Decryption still correct: True"]),
    ("cache_side_channel.py", ["LEAKS via probe", "probe blinded",
                               "P5"]),
    ("multilevel_policies.py", ["leakage {M} -> L: 0.00 bits",
                                "partition M: modified"]),
    ("verify_your_hardware.py", ["SECURE (ship it)", "REJECTED"]),
    ("sbox_key_recovery.py", ["learned", "256 candidates"]),
    ("auto_repair.py", ["Theorem 2 holds", "mitigate"]),
]


@pytest.mark.parametrize("script,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    for needle in expected:
        assert needle in result.stdout, (
            f"{script} output missing {needle!r}:\n{result.stdout}"
        )


def test_all_examples_covered():
    shipped = {
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    }
    assert shipped == {c[0] for c in CASES}
