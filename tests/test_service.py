"""The timing-safe serving layer (src/repro/service, docs/SERVICE.md)."""

import math

import pytest

from repro.service import (
    FifoPolicy,
    Gateway,
    LoadGenerator,
    QuantizedPolicy,
    RoundRobinPolicy,
    WorkloadError,
    WorkloadSpec,
    audit_service,
    make_policy,
    serve_workload,
    service_document,
)
from repro.service.audit import quantile
from repro.service.scheduler import new_queues
from repro.service.workload import Request, _tenant_seed


def spec_dict(**overrides):
    base = {
        "seed": 11,
        "requests": 20,
        "policy": "fifo",
        "workers": 2,
        "queue_depth": 8,
        "arrival": {"kind": "open", "mean_gap": 900},
        "tenants": [
            {"name": "alpha", "app": "login", "config": {"table_size": 4}},
            {"name": "beta", "app": "password", "config": {"length": 4}},
            {"name": "gamma", "app": "sbox", "config": {"length": 4}},
        ],
    }
    base.update(overrides)
    return base


class TestWorkloadSpec:
    def test_round_trips_and_validates(self):
        spec = WorkloadSpec.from_dict(spec_dict())
        assert [t.name for t in spec.tenants] == ["alpha", "beta", "gamma"]
        assert spec.policy == "fifo"

    def test_rejects_unknown_spec_key(self):
        with pytest.raises(WorkloadError, match="unknown spec keys"):
            WorkloadSpec.from_dict(spec_dict(quantumm=64))

    def test_rejects_unknown_tenant_key(self):
        raw = spec_dict()
        raw["tenants"][0]["color"] = "red"
        with pytest.raises(WorkloadError, match="unknown tenant keys"):
            WorkloadSpec.from_dict(raw)

    def test_rejects_bad_policy(self):
        with pytest.raises(WorkloadError, match="policy"):
            WorkloadSpec.from_dict(spec_dict(policy="lifo"))

    def test_rejects_duplicate_tenant_names(self):
        raw = spec_dict()
        raw["tenants"].append(dict(raw["tenants"][0]))
        with pytest.raises(WorkloadError, match="unique"):
            WorkloadSpec.from_dict(raw)

    def test_rejects_unknown_app(self):
        raw = spec_dict()
        raw["tenants"][0]["app"] = "graphql"
        with pytest.raises(WorkloadError, match="graphql"):
            WorkloadSpec.from_dict(raw).build_handlers()

    def test_rejects_bad_arrival(self):
        with pytest.raises(WorkloadError, match="arrival.kind"):
            WorkloadSpec.from_dict(
                spec_dict(arrival={"kind": "sine", "mean_gap": 10})
            )
        with pytest.raises(WorkloadError, match="clients"):
            WorkloadSpec.from_dict(
                spec_dict(arrival={"kind": "closed", "clients": 0,
                                   "think": 1})
            )

    def test_rejects_unknown_hardware(self):
        with pytest.raises(WorkloadError, match="hardware"):
            WorkloadSpec.from_dict(spec_dict(hardware="abacus"))

    def test_accepts_any_registered_hardware(self):
        from repro.hardware import REGISTRY

        for name in REGISTRY.choices():
            spec = WorkloadSpec.from_dict(spec_dict(hardware=name))
            assert spec.hardware == name

    def test_rejects_bad_scheme_and_penalty(self):
        with pytest.raises(WorkloadError, match="scheme"):
            WorkloadSpec.from_dict(spec_dict(scheme="cubic"))
        with pytest.raises(WorkloadError, match="penalty"):
            WorkloadSpec.from_dict(spec_dict(penalty="shared"))

    def test_tenant_seed_is_stable_and_per_tenant(self):
        assert _tenant_seed(11, "alpha") == _tenant_seed(11, "alpha")
        assert _tenant_seed(11, "alpha") != _tenant_seed(11, "beta")
        assert _tenant_seed(11, "alpha") != _tenant_seed(12, "alpha")


class TestLoadGenerator:
    def test_open_loop_is_deterministic_and_monotone(self):
        spec = WorkloadSpec.from_dict(spec_dict())
        handlers = spec.build_handlers()
        first = LoadGenerator(spec, handlers).initial()
        second = LoadGenerator(spec, handlers).initial()
        assert [r.arrival for r in first] == [r.arrival for r in second]
        assert [r.tenant for r in first] == [r.tenant for r in second]
        assert all(a.arrival <= b.arrival
                   for a, b in zip(first, second[1:]))
        assert len(first) == spec.requests

    def test_closed_loop_keeps_one_request_per_client(self):
        spec = WorkloadSpec.from_dict(spec_dict(
            arrival={"kind": "closed", "clients": 3, "think": 100},
            requests=10,
        ))
        handlers = spec.build_handlers()
        gen = LoadGenerator(spec, handlers)
        initial = gen.initial()
        assert len(initial) == 3  # one outstanding request per client
        follow = gen.on_done(initial[0], 5_000)
        assert follow is not None
        assert follow.client == initial[0].client
        assert follow.arrival == 5_000 + 100

    def test_closed_loop_stops_at_request_budget(self):
        spec = WorkloadSpec.from_dict(spec_dict(
            arrival={"kind": "closed", "clients": 2, "think": 0},
            requests=3,
        ))
        gen = LoadGenerator(spec, spec.build_handlers())
        outstanding = gen.initial()
        assert gen.on_done(outstanding[0], 10) is not None
        assert gen.on_done(outstanding[1], 20) is None  # budget spent


class TestSchedulerPolicies:
    @staticmethod
    def _queues(*requests):
        queues = new_queues(sorted({r.tenant for r in requests}))
        for request in requests:
            queues[request.tenant].append(request)
        return queues

    @staticmethod
    def _req(req_id, tenant, arrival):
        return Request(req_id=req_id, tenant=tenant, arrival=arrival,
                       payload=None)

    def test_fifo_picks_earliest_arrival_across_tenants(self):
        queues = self._queues(
            self._req(0, "a", 50), self._req(1, "b", 10),
            self._req(2, "c", 30),
        )
        policy = FifoPolicy()
        assert [policy.select(queues).req_id for _ in range(3)] == [1, 2, 0]

    def test_round_robin_cycles_tenants(self):
        queues = self._queues(
            self._req(0, "a", 0), self._req(1, "a", 1),
            self._req(2, "b", 2), self._req(3, "c", 3),
        )
        policy = RoundRobinPolicy(["a", "b", "c"])
        order = [policy.select(queues).tenant for _ in range(4)]
        assert order == ["a", "b", "c", "a"]
        assert policy.select(queues) is None

    def test_quantized_aligns_dispatch_and_release(self):
        policy = QuantizedPolicy(100)
        assert policy.dispatch_time(0) == 0
        assert policy.dispatch_time(1) == 100
        assert policy.dispatch_time(100) == 100
        # Release lands on the grid and is held at least one quantum.
        assert policy.release_time(100, 130) == 200
        assert policy.release_time(100, 100) == 200
        assert policy.release_time(100, 201) == 300

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler policy"):
            make_policy("edf", ["a"])
        with pytest.raises(ValueError, match="quantum"):
            QuantizedPolicy(0)


class TestGateway:
    def test_same_spec_same_release_times(self):
        raw = spec_dict(policy="quantized", quantum=1024)
        first = serve_workload(raw)
        second = serve_workload(raw)
        assert first.release_times() == second.release_times()
        assert [r.status for r in first.responses] == [
            r.status for r in second.responses
        ]

    def test_different_seed_different_stream(self):
        first = serve_workload(spec_dict(seed=1))
        second = serve_workload(spec_dict(seed=2))
        assert ([r.request.tenant for r in first.responses]
                != [r.request.tenant for r in second.responses]
                or first.release_times() != second.release_times())

    def test_quantized_starts_and_releases_on_grid(self):
        quantum = 1024
        result = serve_workload(spec_dict(policy="quantized",
                                          quantum=quantum))
        completed = result.completed()
        assert completed
        for response in completed:
            assert response.start % quantum == 0
            assert response.release % quantum == 0
            assert response.observable >= quantum
            assert response.observable % quantum == 0

    def test_fifo_serves_in_arrival_order_per_tenant(self):
        result = serve_workload(spec_dict())
        by_tenant = {}
        for response in result.completed():
            by_tenant.setdefault(response.tenant, []).append(
                response.request.arrival
            )
        for arrivals in by_tenant.values():
            assert arrivals == sorted(arrivals)

    def test_backpressure_sheds_load_without_deadlock(self):
        result = serve_workload(spec_dict(
            requests=30, workers=1, queue_depth=1, max_retries=2,
            retry_backoff=64,
            arrival={"kind": "open", "mean_gap": 1},
        ))
        statuses = {r.status for r in result.responses}
        assert "rejected" in statuses
        assert result.retries > 0
        # Every submitted request reached a terminal state.
        assert len(result.responses) == 30
        assert result.registry.counter("service.requests.rejected") > 0

    def test_timeout_drops_stale_requests(self):
        result = serve_workload(spec_dict(
            requests=30, workers=1, queue_depth=30, timeout=2_000,
            arrival={"kind": "open", "mean_gap": 1},
        ))
        assert any(r.status == "timeout" for r in result.responses)
        assert len(result.responses) == 30

    def test_per_tenant_mitigation_state_is_isolated(self):
        result = serve_workload(spec_dict())
        states = list(result.states.values())
        assert len({id(s) for s in states}) == len(states)
        meters = list(result.meters.values())
        assert len({id(m) for m in meters}) == len(meters)
        # Each tenant's meter saw exactly that tenant's completed runs.
        for name, meter in result.meters.items():
            assert meter.runs == result.stats[name].completed

    def test_telemetry_counters_add_up(self):
        result = serve_workload(spec_dict())
        registry = result.registry
        total = (registry.counter("service.requests.ok")
                 + registry.counter("service.requests.rejected")
                 + registry.counter("service.requests.timeout"))
        assert registry.counter("service.requests.submitted") == total == 20
        per_tenant = sum(
            reg.counter("service.requests.submitted")
            for reg in result.tenant_registries.values()
        )
        assert per_tenant == 20

    def test_closed_loop_completes_budget(self):
        result = serve_workload(spec_dict(
            arrival={"kind": "closed", "clients": 4, "think": 256},
            requests=16,
        ))
        assert len(result.responses) == 16


class TestAudit:
    def test_quantized_audit_within_bound(self):
        result = serve_workload(spec_dict(policy="quantized", quantum=2048,
                                          requests=24))
        audit = audit_service(result)
        assert audit.ok
        for tenant in audit.tenants.values():
            assert tenant.observed_bits <= tenant.bound_bits + 1e-9
            assert tenant.deadline_within

    def test_observed_bits_counts_distinct_observables(self):
        result = serve_workload(spec_dict(policy="quantized", quantum=2048,
                                          requests=24))
        audit = audit_service(result)
        for name, tenant in audit.tenants.items():
            distinct = {
                r.observable for r in result.completed()
                if r.tenant == name
            }
            expected = math.log2(len(distinct)) if distinct else 0.0
            assert tenant.observed_bits == pytest.approx(expected)

    def test_probe_reports_secret_classes(self):
        result = serve_workload(spec_dict(requests=40))
        audit = audit_service(result)
        login = audit.tenants["alpha"]
        assert login.probe is not None
        assert {login.probe.class_a, login.probe.class_b} == {
            "valid", "invalid"
        }
        # sbox payloads carry no secret class -> no probe.
        assert audit.tenants["gamma"].probe is None

    def test_audit_stats_reach_the_registry(self):
        result = serve_workload(spec_dict(requests=30))
        audit_service(result)
        gauges = [name for name in result.registry.gauges
                  if name.startswith("attack.service.")]
        assert gauges

    def test_service_document_shape(self):
        result = serve_workload(spec_dict(policy="quantized"))
        doc = service_document(result)
        assert doc["schema"] == "repro.telemetry/1"
        service = doc["service"]
        assert service["policy"].startswith("quantized")
        assert set(service["tenants"]) == {"alpha", "beta", "gamma"}
        for tenant in service["tenants"].values():
            assert {"app", "requests", "latency", "observable",
                    "audit"} <= set(tenant)
        assert isinstance(service["audit_ok"], bool)

    def test_quantile_nearest_rank(self):
        assert quantile([], 0.5) == 0
        assert quantile([7], 0.99) == 7
        assert quantile([1, 2, 3, 4], 0.5) == 2
        assert quantile(list(range(1, 101)), 0.99) == 99


class TestSchemePenaltyPlumbing:
    def test_spec_scheme_and_penalty_reach_the_states(self):
        result = serve_workload(spec_dict(scheme="polynomial",
                                          penalty="global", requests=6))
        for state in result.states.values():
            assert "Polynomial" in state.describe()
            assert state.policy == "global"

    def test_gateway_accepts_prebuilt_spec(self):
        spec = WorkloadSpec.from_dict(spec_dict(requests=6))
        result = Gateway(spec).serve()
        assert len(result.responses) == 6


class TestHandlerKnobs:
    """The red-team victim knobs: ``alphabet``, ``mitigated``, and the
    keyed-hash tag endpoint (docs/ATTACKS.md)."""

    def test_password_alphabet_bounds_the_stored_secret(self):
        raw = spec_dict(tenants=[
            {"name": "t", "app": "password",
             "config": {"length": 4, "alphabet": 8}},
        ])
        handler = WorkloadSpec.from_dict(raw).build_handlers()["t"]
        assert len(handler.stored) == 4
        assert all(0 <= s < 8 for s in handler.stored)

    def test_mitigated_must_be_a_bool(self):
        raw = spec_dict(tenants=[
            {"name": "t", "app": "password",
             "config": {"length": 4, "mitigated": "yes"}},
        ])
        with pytest.raises((WorkloadError, ValueError), match="bool"):
            WorkloadSpec.from_dict(raw).build_handlers()

    def test_unmitigated_password_varies_its_service_time(self):
        raw = spec_dict(requests=30, tenants=[
            {"name": "t", "app": "password",
             "config": {"mitigated": False, "length": 4, "alphabet": 8}},
        ])
        result = serve_workload(raw)  # fifo: observable = service time
        assert len(set(result.stats["t"].observables)) > 1

    def test_mitigated_password_is_flat_at_covering_budget(self):
        raw = spec_dict(requests=30, tenants=[
            {"name": "t", "app": "password",
             "config": {"mitigated": True, "length": 4, "alphabet": 8,
                        "budget": 4096}},
        ])
        result = serve_workload(raw)
        assert len(set(result.stats["t"].observables)) == 1

    def tag_handler(self, **config):
        raw = spec_dict(tenants=[
            {"name": "t", "app": "tag", "config": config},
        ])
        return WorkloadSpec.from_dict(raw).build_handlers()["t"]

    def test_tag_for_is_deterministic_and_nibble_bounded(self):
        handler = self.tag_handler(nibbles=5)
        tag = handler.tag_for([1, 2, 3, 4])
        assert tag == handler.tag_for([1, 2, 3, 4])
        assert len(tag) == 5
        assert all(0 <= n < 16 for n in tag)

    def test_tag_payload_classes_match_the_true_tag(self):
        import random as _random

        handler = self.tag_handler(nibbles=5)
        rng = _random.Random(3)
        seen = set()
        for _ in range(40):
            payload = handler.new_payload(rng)
            seen.add(payload.secret_class)
            true_tag = handler.tag_for(payload.args["message"])
            if payload.secret_class == "valid":
                assert payload.args["tag"] == true_tag
            else:
                assert payload.args["tag"] != true_tag
        assert seen == {"valid", "forged"}

    def test_tag_nibbles_capped_at_digest_width(self):
        with pytest.raises((WorkloadError, ValueError), match="nibbles"):
            self.tag_handler(nibbles=8)

    def test_tag_tenant_serves_and_audits(self):
        raw = spec_dict(requests=20, policy="quantized", tenants=[
            {"name": "t", "app": "tag", "config": {"nibbles": 5}},
        ])
        result = serve_workload(raw)
        audit = audit_service(result)
        assert result.stats["t"].completed > 0
        assert audit.ok


class TestRequestSourceSeam:
    """The programmatic multi-client injection seam the adversary
    subsystem drives (``Gateway(spec, source=...)``)."""

    class ScriptedSource:
        def __init__(self, handlers, tenant, count=6):
            import random as _random

            self.rng = _random.Random(1)
            self.handlers = handlers
            self.tenant = tenant
            self.count = count
            self.seen = []

        def _request(self, req_id, arrival):
            return Request(
                req_id=req_id, tenant=self.tenant, arrival=arrival,
                payload=self.handlers[self.tenant].new_payload(self.rng),
            )

        def initial(self):
            return [self._request(1_000_000, 0)]

        def on_response(self, response, time):
            self.seen.append(response.request.req_id)
            if len(self.seen) >= self.count:
                return None
            # A bare Request (not a list): the seam accepts both.
            return self._request(1_000_000 + len(self.seen), time + 100)

    def test_gateway_serves_a_custom_source(self):
        wspec = WorkloadSpec.from_dict(spec_dict())
        gateway = Gateway(wspec)
        source = self.ScriptedSource(gateway.handlers, "beta")
        result = gateway.use_source(source).serve()
        assert source.seen == [1_000_000 + i for i in range(6)]
        assert len(result.completed()) == 6
        assert all(r.tenant == "beta" for r in result.completed())

    def test_source_constructor_argument(self):
        wspec = WorkloadSpec.from_dict(spec_dict())
        handlers = wspec.build_handlers()
        source = self.ScriptedSource(handlers, "alpha", count=3)
        result = Gateway(wspec, source=source).serve()
        assert len(source.seen) == 3
        assert all(r.tenant == "alpha" for r in result.completed())

    def test_default_source_is_the_spec_load_generator(self):
        result = Gateway(WorkloadSpec.from_dict(spec_dict())).serve()
        assert len(result.responses) == 20
