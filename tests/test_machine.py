"""Unit tests for memory, equivalence relations, and address layout."""

import pytest

from repro.lang import parse
from repro.lattice import chain, two_point
from repro.machine import (
    AccessTrace,
    DataAccess,
    INSTR_BYTES,
    Layout,
    Memory,
    MemoryError_,
    WORD_BYTES,
    equivalent,
    memories_agreeing_on,
    projected_equivalent,
)


class TestMemory:
    def test_scalars(self):
        m = Memory({"x": 1, "y": 2})
        assert m.read("x") == 1
        m.write("x", 5)
        assert m.read("x") == 5

    def test_arrays(self):
        m = Memory({"a": [1, 2, 3]})
        assert m.array_length("a") == 3
        assert m.read_elem("a", 1) == 2
        m.write_elem("a", 1, 9)
        assert m.read_elem("a", 1) == 9

    def test_bool_becomes_int(self):
        m = Memory({"x": True})
        assert m.read("x") == 1

    def test_undeclared_scalar(self):
        with pytest.raises(MemoryError_):
            Memory({}).read("x")
        with pytest.raises(MemoryError_):
            Memory({}).write("x", 1)

    def test_undeclared_array(self):
        with pytest.raises(MemoryError_):
            Memory({"x": 1}).read_elem("x", 0)

    def test_out_of_bounds(self):
        m = Memory({"a": [1]})
        with pytest.raises(MemoryError_):
            m.read_elem("a", 1)
        with pytest.raises(MemoryError_):
            m.write_elem("a", -1, 0)

    def test_copy_is_deep(self):
        m = Memory({"a": [1, 2], "x": 0})
        c = m.copy()
        c.write_elem("a", 0, 99)
        c.write("x", 7)
        assert m.read_elem("a", 0) == 1
        assert m.read("x") == 0

    def test_equality_and_hash(self):
        m1 = Memory({"x": 1, "a": [2]})
        m2 = Memory({"x": 1, "a": [2]})
        assert m1 == m2
        assert hash(m1) == hash(m2)
        m2.write("x", 2)
        assert m1 != m2

    def test_names_sorted(self):
        m = Memory({"z": 1, "a": [1], "b": 2})
        assert m.names() == ("b", "z", "a")

    def test_value_of(self):
        m = Memory({"x": 1, "a": [2, 3]})
        assert m.value_of("x") == 1
        assert m.value_of("a") == (2, 3)


class TestEquivalence:
    def setup_method(self):
        self.lat = chain(("L", "M", "H"))
        self.gamma = {
            "l": self.lat["L"],
            "m": self.lat["M"],
            "h": self.lat["H"],
        }

    def test_equivalent_at_level(self):
        m1 = Memory({"l": 1, "m": 2, "h": 3})
        m2 = Memory({"l": 1, "m": 2, "h": 99})
        assert equivalent(m1, m2, self.gamma, self.lat["M"])
        assert not equivalent(m1, m2, self.gamma, self.lat["H"])

    def test_equivalent_includes_below(self):
        m1 = Memory({"l": 1, "m": 2, "h": 3})
        m2 = Memory({"l": 9, "m": 2, "h": 3})
        assert not equivalent(m1, m2, self.gamma, self.lat["M"])

    def test_projected_exact_level_only(self):
        m1 = Memory({"l": 1, "m": 2, "h": 3})
        m2 = Memory({"l": 9, "m": 2, "h": 99})
        assert projected_equivalent(m1, m2, self.gamma, self.lat["M"])
        assert not projected_equivalent(m1, m2, self.gamma, self.lat["L"])

    def test_missing_label_raises(self):
        m1 = Memory({"q": 1})
        m2 = Memory({"q": 1})
        with pytest.raises(KeyError):
            equivalent(m1, m2, self.gamma, self.lat["L"])

    def test_agreeing_on(self):
        m1 = Memory({"x": 1, "y": 2})
        m2 = Memory({"x": 1, "y": 3})
        assert memories_agreeing_on(m1, m2, ["x"])
        assert not memories_agreeing_on(m1, m2, ["x", "y"])


class TestLayout:
    def test_scalar_addresses_word_spaced(self):
        m = Memory({"a": 0, "b": 0, "c": 0})
        layout = Layout.build(parse("skip"), m)
        addrs = sorted(layout.var_addr.values())
        assert addrs[1] - addrs[0] == WORD_BYTES
        assert addrs[2] - addrs[1] == WORD_BYTES

    def test_array_contiguous_after_scalars(self):
        m = Memory({"x": 0, "arr": [0] * 4})
        layout = Layout.build(parse("skip"), m)
        assert layout.array_addr["arr"] == layout.var_addr["x"] + WORD_BYTES
        assert layout.array_len["arr"] == 4

    def test_element_addresses(self):
        m = Memory({"arr": [0] * 4})
        layout = Layout.build(parse("skip"), m)
        base = layout.array_addr["arr"]
        assert layout.data_address(DataAccess("arr", 2)) == base + 2 * WORD_BYTES

    def test_instruction_slots_preorder(self):
        prog = parse("skip; x := 1; skip")
        layout = Layout.build(prog, Memory({"x": 0}))
        addrs = sorted(layout.instr_addr.values())
        assert addrs[1] - addrs[0] == INSTR_BYTES

    def test_layout_is_value_independent(self):
        prog = parse("x := 1")
        l1 = Layout.build(prog, Memory({"x": 0, "a": [1, 2]}))
        l2 = Layout.build(prog, Memory({"x": 77, "a": [9, 9]}))
        assert l1.var_addr == l2.var_addr
        assert l1.array_addr == l2.array_addr

    def test_unknown_name(self):
        layout = Layout.build(parse("skip"), Memory({}))
        with pytest.raises(KeyError):
            layout.data_address(DataAccess("nope"))
        with pytest.raises(KeyError):
            layout.instruction_address(123456)

    def test_access_trace_frozen(self):
        t = AccessTrace(instruction=1, reads=(2,), writes=(3,))
        with pytest.raises(AttributeError):
            t.instruction = 5
