"""Unit tests for the language front end: lexer, parser, pretty, builder."""

import pytest

from repro.lang import (
    ArrayAssign,
    ArrayRead,
    Assign,
    B,
    BinOp,
    If,
    IntLit,
    LexError,
    Mitigate,
    ParseError,
    Seq,
    Skip,
    Sleep,
    UnOp,
    Var,
    While,
    ast_equal,
    labeled_commands,
    mitigates,
    parse,
    parse_expr,
    pretty,
    pretty_expr,
    program_variables,
    seq,
    tokenize,
)
from repro.lattice import chain, two_point


class TestLexer:
    def test_simple_tokens(self):
        kinds = [t.kind for t in tokenize("x := 1 + y")]
        assert kinds == ["ident", ":=", "int", "+", "ident", "eof"]

    def test_keywords(self):
        toks = tokenize("if while skip sleep mitigate then else do")
        assert all(t.kind == "keyword" for t in toks[:-1])

    def test_multichar_operators(self):
        kinds = [t.kind for t in tokenize("<= >= == != && || << >> :=")]
        assert kinds[:-1] == ["<=", ">=", "==", "!=", "&&", "||", "<<", ">>", ":="]

    def test_comments_skipped(self):
        toks = tokenize("x // comment here\n:= 1")
        assert [t.kind for t in toks] == ["ident", ":=", "int", "eof"]

    def test_line_tracking(self):
        toks = tokenize("a\nb")
        assert toks[0].line == 1 and toks[1].line == 2

    def test_unknown_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("x := $")

    def test_underscore_ident(self):
        toks = tokenize("_")
        assert toks[0].kind == "ident" and toks[0].text == "_"

    def test_column_tracking(self):
        toks = tokenize("x := 10")
        assert [(t.text, t.column) for t in toks[:-1]] == [
            ("x", 1), (":=", 3), ("10", 6)
        ]

    def test_comment_advances_column(self):
        # Regression: the `//` branch used to advance the source index
        # without updating the column, skewing every later position on
        # the line (visible at eof for a trailing comment).
        source = "x := 1 // trailing"
        eof = tokenize(source)[-1]
        assert eof.column == len(source) + 1

    def test_column_resets_after_comment_line(self):
        toks = tokenize("x // comment\ny := 1")
        y = toks[1]
        assert (y.text, y.line, y.column) == ("y", 2, 1)


class TestSpans:
    def test_command_spans(self):
        first, second = labeled_commands(
            parse("skip [L,L];\nx := y + 1 [L,L]")
        )
        assert (first.span.line, first.span.column) == (1, 1)
        assert first.span.end_column == 11  # includes the annotation
        assert (second.span.line, second.span.column) == (2, 1)

    def test_expression_spans(self):
        cmd = parse("x := foo + 10 [L,L]")
        assert (cmd.expr.span.line, cmd.expr.span.column) == (1, 6)
        assert cmd.expr.span.end_column == 14
        assert cmd.expr.left.span.column == 6
        assert cmd.expr.right.span.column == 12

    def test_nested_command_spans(self):
        cmd = parse("if h then {\n    x := 1 [L,L]\n"
                    "} else {\n    skip [L,L]\n} [L,L]")
        assert (cmd.span.line, cmd.span.column) == (1, 1)
        assert (cmd.then_branch.span.line,
                cmd.then_branch.span.column) == (2, 5)
        assert (cmd.else_branch.span.line,
                cmd.else_branch.span.column) == (4, 5)

    def test_built_nodes_are_synthetic(self):
        cmd = Assign(target="x", expr=IntLit(1))
        assert cmd.span.is_synthetic
        assert cmd.expr.span.is_synthetic

    def test_span_str(self):
        cmd = parse("skip [L,L]")
        assert str(cmd.span) == "1:1"

    def test_typing_error_cites_position(self):
        from repro.lattice import two_point
        from repro.typesystem import SecurityEnvironment, TypingError, \
            typecheck
        lat = two_point()
        gamma = SecurityEnvironment(lat, {"h": lat["H"], "l": lat["L"]})
        program = parse("skip [L,L];\nl := h [L,L]", lat)
        with pytest.raises(TypingError, match=r"line 2, col 1"):
            typecheck(program, gamma)


class TestParserCommands:
    def test_skip(self):
        cmd = parse("skip [L,H]")
        assert isinstance(cmd, Skip)
        assert cmd.read_label.name == "L"
        assert cmd.write_label.name == "H"

    def test_unannotated(self):
        cmd = parse("skip")
        assert cmd.read_label is None and cmd.write_label is None

    def test_placeholder_annotation(self):
        cmd = parse("skip [_,H]")
        assert cmd.read_label is None and cmd.write_label.name == "H"

    def test_assignment(self):
        cmd = parse("x := y + 1 [L,L]")
        assert isinstance(cmd, Assign)
        assert cmd.target == "x"
        assert isinstance(cmd.expr, BinOp)

    def test_array_assignment(self):
        cmd = parse("a[i] := 2")
        assert isinstance(cmd, ArrayAssign)
        assert cmd.array == "a"

    def test_sequence_right_associated(self):
        cmd = parse("skip; skip; skip")
        assert isinstance(cmd, Seq)
        assert isinstance(cmd.first, Skip)
        assert isinstance(cmd.second, Seq)

    def test_trailing_semicolon(self):
        cmd = parse("skip;")
        assert isinstance(cmd, Skip)

    def test_if(self):
        cmd = parse("if h then { x := 1 } else { x := 2 } [L,L]")
        assert isinstance(cmd, If)
        assert isinstance(cmd.then_branch, Assign)

    def test_while(self):
        cmd = parse("while x > 0 do { x := x - 1 } [L,L]")
        assert isinstance(cmd, While)

    def test_sleep(self):
        cmd = parse("sleep(h) [H,H]")
        assert isinstance(cmd, Sleep)
        assert isinstance(cmd.duration, Var)

    def test_mitigate(self):
        cmd = parse("mitigate(10, H) { sleep(h) }")
        assert isinstance(cmd, Mitigate)
        assert cmd.level.name == "H"
        assert cmd.auto_id

    def test_mitigate_with_id(self):
        cmd = parse("mitigate@block1 (10, H) { skip }")
        assert cmd.mit_id == "block1"
        assert not cmd.auto_id

    def test_mitigate_needs_level(self):
        with pytest.raises(ParseError, match="mitigation level"):
            parse("mitigate(10, _) { skip }")

    def test_custom_lattice_labels(self):
        lat = chain(("L", "M", "H"))
        cmd = parse("skip [M,M]", lat)
        assert cmd.read_label == lat["M"]

    def test_unknown_label_rejected(self):
        with pytest.raises(ParseError, match="unknown security level"):
            parse("skip [Q,L]")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("if then else")

    def test_missing_close_brace(self):
        with pytest.raises(ParseError):
            parse("while x do { skip")


class TestParserExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_precedence_cmp_over_bool(self):
        e = parse_expr("a < b && c > d")
        assert e.op == "&&"

    def test_parentheses(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_left_associativity(self):
        e = parse_expr("10 - 3 - 2")
        assert e.op == "-"
        assert e.left.op == "-"
        assert e.right.value == 2

    def test_unary(self):
        e = parse_expr("-x + !y")
        assert e.op == "+"
        assert isinstance(e.left, UnOp) and e.left.op == "-"
        assert isinstance(e.right, UnOp) and e.right.op == "!"

    def test_array_read(self):
        e = parse_expr("a[i + 1]")
        assert isinstance(e, ArrayRead)
        assert e.index.op == "+"

    def test_shift_precedence(self):
        # (d >> e) & 1 without parens: & binds looser than >>
        e = parse_expr("d >> e & 1")
        assert e.op == "&"


class TestPretty:
    PROGRAMS = [
        "skip [L,L]",
        "x := a[i] + 1 [L,H]",
        "a[i + 1] := x * 2",
        "if h then {\n    x := 1 [H,H]\n} else {\n    skip\n} [L,L]",
        "while x > 0 do {\n    x := x - 1\n} [L,L]",
        "mitigate(10, H) {\n    sleep(h) [H,H]\n} [L,L]",
        "skip;\nskip [L,H];\nx := 1",
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_roundtrip(self, source):
        first = parse(source)
        text = pretty(first)
        second = parse(text)
        assert ast_equal(first, second)

    def test_expr_parenthesization(self):
        e = parse_expr("(1 + 2) * (3 - 4)")
        text = pretty_expr(e)
        again = parse_expr(text)
        assert ast_equal(e, again)

    def test_no_spurious_parens(self):
        assert pretty_expr(parse_expr("1 + 2 + 3")) == "1 + 2 + 3"

    def test_explicit_mitigate_id_round_trips(self):
        cmd = parse("mitigate@foo (1, H) { skip }")
        again = parse(pretty(cmd))
        assert again.mit_id == "foo"


class TestBuilder:
    def test_expression_operators(self):
        lat = two_point()
        b = B(lat)
        e = (b.v("x") + 1) * 2
        assert pretty_expr(e.node) == "(x + 1) * 2"

    def test_comparison_builds_nodes(self):
        b = B(two_point())
        e = b.v("x") == b.v("y")
        assert e.node.op == "=="

    def test_boolean_helpers(self):
        b = B(two_point())
        e = (b.v("x") > 0).and_(b.v("y") < 2)
        assert e.node.op == "&&"

    def test_command_builders(self):
        lat = two_point()
        b = B(lat)
        prog = b.seq(
            b.assign("x", 1, lat["L"], lat["L"]),
            b.while_(b.v("x") > 0, b.assign("x", b.v("x") - 1)),
        )
        assert isinstance(prog, Seq)
        assert isinstance(prog.second, While)

    def test_if_default_else_is_skip(self):
        b = B(two_point())
        cmd = b.if_(b.v("h"), b.assign("x", 1))
        assert isinstance(cmd.else_branch, Skip)

    def test_store_and_at(self):
        b = B(two_point())
        cmd = b.store("a", b.v("i"), b.at("a", b.v("i")) + 1)
        assert isinstance(cmd, ArrayAssign)
        assert isinstance(cmd.expr.left, ArrayRead)

    def test_reverse_operators(self):
        b = B(two_point())
        e = 1 + b.v("x")
        assert e.node.op == "+"
        assert isinstance(e.node.left, IntLit)


class TestAstHelpers:
    def test_labeled_commands_excludes_seq(self):
        prog = parse("skip; skip; x := 1")
        cmds = labeled_commands(prog)
        assert len(cmds) == 3

    def test_mitigates(self):
        prog = parse("mitigate(1, H) { mitigate(2, H) { skip } }")
        assert len(mitigates(prog)) == 2

    def test_program_variables(self):
        prog = parse("x := a[i] + y; while z > 0 do { skip }")
        assert program_variables(prog) >= {"x", "a", "i", "y", "z"}

    def test_seq_helper(self):
        prog = seq(Skip(), Skip(), Skip())
        assert isinstance(prog, Seq)
        assert isinstance(prog.second, Seq)

    def test_seq_empty_rejected(self):
        with pytest.raises(ValueError):
            seq()

    def test_node_ids_unique(self):
        prog = parse("skip; skip; skip")
        ids = [c.node_id for c in labeled_commands(prog)]
        assert len(set(ids)) == 3

    def test_vars1_definitions(self):
        # Sec. 3.6: guard-only for compound commands.
        w = parse("while x > 0 do { y := z } [L,L]")
        assert w.vars1() == {"x"}
        a = parse("x := y + z [L,L]")
        assert a.vars1() == {"x", "y", "z"}
        s = parse("sleep(e) [L,L]")
        assert s.vars1() == {"e"}
        m = parse("mitigate(b, H) { y := z }")
        assert m.vars1() == {"b"}
        i = parse("if c then { y := z } else { skip } [L,L]")
        assert i.vars1() == {"c"}
        assert parse("skip").vars1() == frozenset()

    def test_ast_equal_ignores_node_ids(self):
        a = parse("x := 1 [L,L]")
        b = parse("x := 1 [L,L]")
        assert a.node_id != b.node_id
        assert ast_equal(a, b)

    def test_ast_equal_distinguishes_labels(self):
        assert not ast_equal(parse("skip [L,L]"), parse("skip [L,H]"))


class TestPowersetLabels:
    """Brace-set level names ({a,b}) in source text."""

    def setup_method(self):
        from repro.lattice import powerset

        self.lat = powerset(["a", "b"])

    def test_annotation(self):
        cmd = parse("x := 1 [{a},{a,b}]", self.lat)
        assert cmd.read_label.name == "{a}"
        assert cmd.write_label.name == "{a,b}"

    def test_empty_set_is_bottom(self):
        cmd = parse("x := 1 [{},{}]", self.lat)
        assert cmd.read_label == self.lat.bottom

    def test_mitigate_level(self):
        cmd = parse("mitigate(1, {a,b}) { skip }", self.lat)
        assert cmd.level == self.lat.top

    def test_unordered_spelling_normalized(self):
        cmd = parse("x := 1 [{b,a},{b,a}]", self.lat)
        assert cmd.read_label.name == "{a,b}"

    def test_pretty_round_trip(self):
        from repro.lang import ast_equal, pretty

        cmd = parse("mitigate(1, {a,b}) { x := 1 [{a},{a,b}] } [{},{}]",
                    self.lat)
        again = parse(pretty(cmd), self.lat)
        assert ast_equal(cmd, again)

    def test_unknown_set_rejected(self):
        with pytest.raises(ParseError, match="unknown security level"):
            parse("x := 1 [{z},{z}]", self.lat)

    def test_malformed_braces(self):
        with pytest.raises(ParseError):
            parse("mitigate(1, {a,) { skip }", self.lat)

    def test_array_read_still_works_alongside(self):
        # {..} labels must not confuse the array/annotation lookahead.
        cmd = parse("x := t[i] [{a},{a}]", self.lat)
        assert cmd.read_label.name == "{a}"
        assert isinstance(cmd.expr, ArrayRead)
