"""Unit tests for the cache and TLB simulators."""

import pytest

from repro.hardware import Cache, CacheParams, Tlb, TlbParams


def make_cache(sets=4, ways=2, block=16, latency=1):
    return Cache(CacheParams(sets, ways, block, latency, "test"))


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert not c.touch(0x100)
        assert c.touch(0x100)

    def test_lookup_does_not_change_state(self):
        c = make_cache()
        assert not c.lookup(0x100)
        assert not c.lookup(0x100)  # still absent
        c.touch(0x100)
        before = c.state()
        assert c.lookup(0x100)
        assert c.state() == before

    def test_same_block_shares_line(self):
        c = make_cache(block=16)
        c.touch(0x100)
        assert c.touch(0x10F)  # same 16-byte block
        assert not c.touch(0x110)  # next block

    def test_set_indexing(self):
        c = make_cache(sets=4, block=16)
        # Addresses 4*16=64 bytes apart map to the same set.
        c.touch(0x000)
        c.touch(0x040)
        c.touch(0x080)  # evicts 0x000 in a 2-way set
        assert not c.lookup(0x000)
        assert c.lookup(0x040)

    def test_lru_eviction_order(self):
        c = make_cache(sets=1, ways=2, block=16)
        c.touch(0x00)
        c.touch(0x10)
        c.touch(0x00)  # promote 0x00
        c.touch(0x20)  # evicts LRU = 0x10
        assert c.lookup(0x00)
        assert not c.lookup(0x10)

    def test_evict(self):
        c = make_cache()
        c.touch(0x100)
        assert c.evict(0x100)
        assert not c.lookup(0x100)
        assert not c.evict(0x100)  # second evict is a no-op

    def test_flush(self):
        c = make_cache()
        for a in range(0, 256, 16):
            c.touch(a)
        c.flush()
        assert c.occupancy() == 0

    def test_occupancy_bounded_by_capacity(self):
        c = make_cache(sets=4, ways=2)
        for a in range(0, 4096, 16):
            c.touch(a)
        assert c.occupancy() <= 4 * 2

    def test_preload(self):
        c = make_cache()
        c.preload([0x00, 0x10, 0x20])
        assert c.lookup(0x00) and c.lookup(0x10) and c.lookup(0x20)

    def test_clone_independent(self):
        c = make_cache()
        c.touch(0x100)
        twin = c.clone()
        twin.touch(0x200)
        assert not c.lookup(0x200)
        assert twin.lookup(0x100)

    def test_state_reflects_lru_order(self):
        c = make_cache(sets=1, ways=2, block=16)
        c.touch(0x00)
        c.touch(0x10)
        s1 = c.state()
        c.touch(0x00)  # reorder only
        s2 = c.state()
        assert s1 != s2

    def test_geometry_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            CacheParams(3, 2, 16, 1)
        with pytest.raises(ValueError):
            CacheParams(4, 2, 24, 1)

    def test_capacity(self):
        assert CacheParams(128, 4, 32, 1).capacity_bytes == 16384


class TestTlb:
    def make(self, sets=2, ways=2, page=4096):
        return Tlb(TlbParams(sets, ways, page, 30, "test"))

    def test_page_granularity(self):
        t = self.make()
        t.touch(0x1000)
        assert t.lookup(0x1FFF)  # same 4 KB page
        assert not t.lookup(0x2000)

    def test_lru(self):
        t = self.make(sets=1, ways=2)
        t.touch(0x0000)
        t.touch(0x1000)
        t.touch(0x0000)
        t.touch(0x2000)  # evicts 0x1000
        assert t.lookup(0x0000)
        assert not t.lookup(0x1000)

    def test_lookup_pure(self):
        t = self.make()
        t.touch(0x1000)
        before = t.state()
        t.lookup(0x1000)
        assert t.state() == before

    def test_evict_and_flush(self):
        t = self.make()
        t.touch(0x1000)
        assert t.evict(0x1000)
        assert not t.lookup(0x1000)
        t.touch(0x1000)
        t.flush()
        assert not t.lookup(0x1000)

    def test_clone(self):
        t = self.make()
        t.touch(0x1000)
        twin = t.clone()
        twin.evict(0x1000)
        assert t.lookup(0x1000)
