"""The static-analysis engine: collector, lints, audit, renderers."""

import glob
import math
import os
import re

import pytest

from repro.analysis import (
    analyze_program,
    analyze_source,
    audit_leakage,
    collect_typing_diagnostics,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.engine import DirectiveError, LintOptions, parse_directives
from repro.analysis.rules import RULES
from repro.lang import B, parse
from repro.lang.parser import DEFAULT_LATTICE
from repro.typesystem import SecurityEnvironment, infer_labels

LINT_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "lint")

GAMMA_HL = {"h": "H", "l": "L"}


def analyze(source, **kw):
    options = LintOptions(**{"gamma": GAMMA_HL, **kw})
    return analyze_source(source, path="test.tl", options=options)


def codes(result):
    return [d.code for d in result.diagnostics]


class TestCollector:
    """The error-recovering type checker (TL001-TL009)."""

    def test_reports_every_violation_in_one_run(self):
        result = analyze(
            "l := h;\n"
            "if h > 0 then { l := 1 } else { skip };\n"
            "sleep(h)\n",
            lints=False,
        )
        assert "TL001" in codes(result)
        assert "TL002" in codes(result)
        assert len(result.diagnostics) >= 3

    def test_explicit_flow_alone(self):
        result = analyze("l := h\n", lints=False)
        assert codes(result) == ["TL001"]

    def test_implicit_flow_from_pc(self):
        result = analyze(
            "if h > 0 then { l := 1 } else { skip }\n", lints=False
        )
        assert "TL002" in codes(result)
        assert "TL001" not in codes(result)

    def test_timing_flow_from_prefix(self):
        result = analyze("sleep(h);\nl := 0\n", lints=False)
        assert codes(result) == ["TL003"]
        (diag,) = result.diagnostics
        assert diag.span.line == 2

    def test_flow_violations_decompose(self):
        # One failing T-ASGN whose value, pc, and timing all break: three
        # separate diagnostics at the same node.
        result = analyze(
            "if h > 0 then { sleep(h); l := h } else { skip }\n",
            lints=False,
        )
        at_assign = [d for d in result.diagnostics
                     if d.code in ("TL001", "TL002", "TL003")]
        assert sorted(d.code for d in at_assign) == [
            "TL001", "TL002", "TL003"
        ]
        assert len({d.node_id for d in at_assign}) == 1

    def test_while_fixpoint_does_not_duplicate(self):
        result = analyze(
            "while l < 4 do { x := h };\nl := x\n",
            gamma={"h": "H", "l": "L", "x": "L"},
            lints=False,
        )
        assert codes(result) == ["TL001"]

    def test_write_label_violation(self):
        result = analyze(
            "if h > 0 then { skip [L,L] } else { skip [H,H] }\n",
            lints=False,
        )
        assert "TL004" in codes(result)

    def test_mitigate_level_violation(self):
        result = analyze(
            "mitigate(1, L) { sleep(h) [H,H] }\n", lints=False
        )
        assert "TL005" in codes(result)

    def test_array_index_leak(self):
        result = analyze(
            "x := a[h] [L,L]\n",
            gamma={"a": "L", "h": "H", "x": "H"},
            lints=False,
        )
        assert codes(result) == ["TL006"]

    def test_missing_label_without_inference(self):
        result = analyze("l := 1\n", infer=False, lints=False)
        assert "TL007" in codes(result)

    def test_cache_label_mismatch(self):
        result = analyze(
            "l := 1 [L,H]\n", require_cache_labels=True, lints=False
        )
        assert "TL008" in codes(result)

    def test_unbound_variable(self):
        result = analyze("x := y + 1\n", gamma={"x": "L"}, lints=False)
        assert "TL009" in codes(result)
        diag = next(d for d in result.diagnostics if d.code == "TL009")
        assert "'y'" in diag.message

    def test_typing_info_still_produced(self):
        result = analyze("l := h\n", lints=False)
        assert result.typing is not None
        assert result.typing.end_label is not None

    def test_collect_typing_diagnostics_direct(self):
        program = infer_labels(
            parse("l := h\n"),
            SecurityEnvironment(DEFAULT_LATTICE, {
                "h": DEFAULT_LATTICE["H"], "l": DEFAULT_LATTICE["L"],
            }),
        )
        gamma = SecurityEnvironment(DEFAULT_LATTICE, {
            "h": DEFAULT_LATTICE["H"], "l": DEFAULT_LATTICE["L"],
        })
        diags, info = collect_typing_diagnostics(program, gamma)
        assert [d.code for d in diags] == ["TL001"]
        assert info.end_label is not None


class TestLints:
    """The AST lint passes (TL010-TL016)."""

    def test_secret_sleep_with_fix(self):
        result = analyze("sleep(h)\n")
        diag = next(d for d in result.diagnostics if d.code == "TL010")
        assert diag.fix is not None
        assert "mitigate(1, H)" in diag.fix

    def test_degenerate_budget(self):
        result = analyze("mitigate(2 - 2, H) { sleep(h) }\n")
        diag = next(d for d in result.diagnostics if d.code == "TL011")
        assert "constantly 0" in diag.message
        assert "mitigate(1, H)" in diag.fix

    def test_redundant_nested_mitigate(self):
        result = analyze(
            "mitigate(1, H) { mitigate(1, H) { sleep(h) } }\n"
        )
        assert "TL012" in codes(result)

    def test_secret_guarded_loop(self):
        result = analyze("while h > 0 do { h := h - 1 }\n")
        assert "TL013" in codes(result)

    def test_useless_mitigate(self):
        result = analyze("mitigate(1, H) { l := 1 };\nx := l\n",
                         gamma={"l": "L", "x": "L"})
        diag = next(d for d in result.diagnostics if d.code == "TL014")
        assert diag.fix == "l := 1 [L,L]"

    def test_unused_variable(self):
        result = analyze("tmp := 5;\nout := tmp + 1\n",
                         gamma={"tmp": "L", "out": "L"})
        unused = [d for d in result.diagnostics if d.code == "TL015"]
        assert len(unused) == 1
        assert "'out'" in unused[0].message

    def test_unreachable_branch_and_loop(self):
        result = analyze(
            "if 0 then { l := 1 } else { skip };\n"
            "while 0 do { l := 2 };\nx := l\n",
            gamma={"l": "L", "x": "L"},
        )
        unreachable = [d for d in result.diagnostics if d.code == "TL016"]
        assert len(unreachable) == 2

    def test_clean_program_is_clean(self):
        result = analyze("l := 1;\nout := l + 1;\nready := out\n",
                         gamma={"l": "L", "out": "L", "ready": "L"})
        assert [d.code for d in result.diagnostics] == ["TL015"]  # ready


class TestSpans:
    """Diagnostics carry real source positions; builder ASTs fall back."""

    def test_every_parsed_diagnostic_has_a_real_span(self):
        result = analyze(
            "l := h;\nsleep(h);\nwhile h > 0 do { h := h - 1 }\n"
        )
        assert result.diagnostics
        for diag in result.diagnostics:
            assert not diag.span.is_synthetic, diag
            assert diag.location().startswith("test.tl:")
            assert re.search(r":\d+:\d+$", diag.location())

    def test_builder_programs_fall_back_to_node_ids(self):
        lat = DEFAULT_LATTICE
        b = B(lat)
        program = b.assign("l", b.v("h"), lat["L"], lat["L"])
        gamma = SecurityEnvironment(lat, {"h": lat["H"], "l": lat["L"]})
        result = analyze_program(program, gamma)
        diag = next(d for d in result.diagnostics if d.code == "TL001")
        assert diag.span.is_synthetic
        assert "node#" in diag.location()

    def test_diagnostics_sorted_by_position(self):
        result = analyze("sleep(h);\nl := h\n")
        lines = [d.span.line for d in result.diagnostics]
        assert lines == sorted(lines)


class TestDirectives:
    def test_parse_directives(self):
        found = parse_directives(
            "// gamma: h=H, l=L\n"
            "// levels: L,M,H\n"
            "// adversary: L\n"
            "// infer: off\n"
            "// require-cache-labels\n"
            "// just a comment\n"
            "skip [L,L]\n"
            "// gamma: ignored=H\n"
        )
        assert found == {
            "gamma": "h=H, l=L",
            "levels": "L,M,H",
            "adversary": "L",
            "infer": "off",
            "require-cache-labels": "on",
        }

    def test_gamma_directive_binds_names(self):
        result = analyze_source("// gamma: h=H, l=L\nl := h\n")
        assert "TL001" in [d.code for d in result.diagnostics]

    def test_levels_directive_builds_chain(self):
        result = analyze_source(
            "// levels: L,M,H\n// gamma: m=M, l=L\nl := m\n"
        )
        assert "TL001" in [d.code for d in result.diagnostics]

    def test_infer_off_directive(self):
        result = analyze_source("// gamma: l=L\n// infer: off\nl := 1\n")
        assert "TL007" in [d.code for d in result.diagnostics]

    def test_cli_gamma_overrides_directive(self):
        result = analyze_source(
            "// gamma: h=L\nl := h\n",
            options=LintOptions(gamma={"h": "H", "l": "L"}),
        )
        assert "TL001" in [d.code for d in result.diagnostics]

    def test_bad_gamma_directive_raises(self):
        with pytest.raises(DirectiveError):
            analyze_source("// gamma: h=TOPSECRET\nskip [L,L]\n")

    def test_bad_adversary_raises(self):
        with pytest.raises(DirectiveError):
            analyze_source("// adversary: Q\nskip [L,L]\n")

    def test_syntax_error_becomes_tl000(self):
        result = analyze_source("// gamma: l=L\nl := [L,L]\n")
        assert result.fatal
        (diag,) = result.diagnostics
        assert diag.code == "TL000"
        assert diag.span.line == 2


class TestAudit:
    def test_no_mitigates_means_zero_bound(self):
        result = analyze("l := 1\n", gamma={"l": "L"})
        assert result.audit.bound_bits == 0.0
        assert result.audit.sites == ()

    def test_single_relevant_site_bound(self):
        result = analyze("mitigate(4, H) { sleep(h) }\n", horizon=1024)
        audit = result.audit
        assert audit.relevant_count == 1
        assert audit.closure_size == 1
        # |L^| * log2(K+1) * (1 + log2 T) = 1 * 1 * 11
        assert audit.bound_bits == pytest.approx(11.0)
        (site,) = audit.sites
        assert site.relevant
        assert site.contribution_bits == pytest.approx(11.0)

    def test_high_context_site_not_relevant(self):
        result = analyze(
            "if h > 0 then { mitigate(1, H) { sleep(h) } }\n"
            "else { skip }\n"
        )
        (site,) = result.audit.sites
        assert not site.relevant
        assert "high context" in site.reason

    def test_observable_level_not_relevant(self):
        result = analyze("mitigate(1, L) { l := 1 };\nx := l\n",
                         gamma={"l": "L", "x": "L"})
        (site,) = result.audit.sites
        assert not site.relevant
        assert "already observable" in site.reason

    def test_audit_lines_show_the_formula(self):
        result = analyze("mitigate(4, H) { sleep(h) }\n", horizon=1024)
        text = "\n".join(result.audit.lines())
        assert "|L^_{L}| = 1" in text
        assert "log2(2)" in text

    def test_audit_respects_adversary_option(self):
        result = analyze_source(
            "// levels: L,M,H\n// gamma: h=H\n"
            "mitigate(1, M) { sleep(h) [H,H] }\n",
            options=LintOptions(adversary="M"),
        )
        # level M is observable at adversary M: not relevant.
        (site,) = result.audit.sites
        assert not site.relevant

    def test_direct_audit_call(self):
        result = analyze("mitigate(4, H) { sleep(h) }\n")
        audit = audit_leakage(
            result.program, result.lattice, result.typing, horizon=2
        )
        assert audit.bound_bits == pytest.approx(
            math.log2(2) * (1 + math.log2(2))
        )


class TestRenderers:
    def _result(self):
        return analyze("l := h;\nsleep(h)\n")

    def test_text_has_excerpt_and_caret(self):
        result = self._result()
        lines = render_text(result.diagnostics, {"test.tl": result.source})
        text = "\n".join(lines)
        assert "test.tl:1:1: error[TL001]" in text
        assert "    l := h;" in text
        assert "    ^" in text
        assert "finding" in lines[-1]

    def test_text_clean_summary(self):
        assert render_text([], {}) == ["clean: no findings"]

    def test_json_document(self):
        result = self._result()
        doc = render_json(result.diagnostics, {"test.tl": result.audit})
        assert doc["schema"] == "repro.lint/1"
        assert doc["summary"]["total"] == len(result.diagnostics)
        assert doc["summary"]["by_code"]["TL001"] == 1
        for entry in doc["diagnostics"]:
            assert {"code", "severity", "message", "span"} <= set(entry)
            assert {"line", "column"} <= set(entry["span"])
        assert doc["audit"]["test.tl"]["adversary"] == "L"


SARIF_LEVELS = {"none", "note", "warning", "error"}


def assert_sarif_2_1_0_shape(doc):
    """Structural validation against the SARIF 2.1.0 schema's required
    properties (the schema itself is not vendored; this checks every
    constraint code-scanning ingestion actually relies on)."""
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    assert isinstance(doc["runs"], list) and doc["runs"]
    for run in doc["runs"]:
        driver = run["tool"]["driver"]
        assert isinstance(driver["name"], str) and driver["name"]
        rule_ids = []
        for rule in driver.get("rules", []):
            assert isinstance(rule["id"], str) and rule["id"]
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in SARIF_LEVELS
            rule_ids.append(rule["id"])
        for result in run.get("results", []):
            assert result["message"]["text"]
            assert result["level"] in SARIF_LEVELS
            if "ruleId" in result:
                assert result["ruleId"] in rule_ids
            if "ruleIndex" in result:
                assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            for location in result.get("locations", []):
                physical = location["physicalLocation"]
                assert physical["artifactLocation"]["uri"]
                region = physical["region"]
                assert region["startLine"] >= 1
                assert region["startColumn"] >= 1
                assert region["endLine"] >= region["startLine"]


class TestSarif:
    def test_sarif_shape_validates(self):
        result = analyze("l := h;\nsleep(h)\n")
        assert_sarif_2_1_0_shape(render_sarif(result.diagnostics))

    def test_sarif_shape_validates_empty(self):
        assert_sarif_2_1_0_shape(render_sarif([]))

    def test_sarif_covers_synthetic_spans(self):
        lat = DEFAULT_LATTICE
        b = B(lat)
        program = b.assign("l", b.v("h"), lat["L"], lat["L"])
        gamma = SecurityEnvironment(lat, {"h": lat["H"], "l": lat["L"]})
        result = analyze_program(program, gamma)
        doc = render_sarif(result.diagnostics)
        assert_sarif_2_1_0_shape(doc)

    def test_every_rule_in_driver_table(self):
        doc = render_sarif([])
        ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
        assert ids == list(RULES)


class TestCorpus:
    """Golden sweep: every fixture triggers the rule it is named after."""

    FIXTURES = sorted(
        glob.glob(os.path.join(LINT_DIR, "tl[0-9][0-9][0-9]_*.tl"))
    )

    def test_corpus_is_complete(self):
        named = {os.path.basename(p)[:5].upper() for p in self.FIXTURES}
        assert named == set(RULES)

    @pytest.mark.parametrize(
        "path", FIXTURES, ids=[os.path.basename(p) for p in FIXTURES]
    )
    def test_fixture_triggers_its_rule(self, path):
        expected = os.path.basename(path)[:5].upper()
        with open(path) as handle:
            source = handle.read()
        result = analyze_source(source, path=path)
        assert expected in [d.code for d in result.diagnostics]

    def test_multi_bug_reports_many_rules_in_one_run(self):
        path = os.path.join(LINT_DIR, "multi_bug.tl")
        with open(path) as handle:
            source = handle.read()
        result = analyze_source(source, path=path)
        found = {d.code for d in result.diagnostics}
        assert len(found) >= 8
        assert len(result.diagnostics) >= 10
        for diag in result.diagnostics:
            assert not diag.span.is_synthetic


class TestSarifCompleteness:
    """Code-scanning completeness: columnKind, rule metadata,
    fingerprints, codeFlows -- plus an exact golden-file comparison."""

    GOLDEN_SOURCE = (
        "// gamma: h=H, l=L, x=H\n"
        "mitigate(20, H) {\n"
        "    if h > 0 then {\n"
        "        x := h + 1\n"
        "    } else {\n"
        "        x := h - 1\n"
        "    }\n"
        "}\n"
        ";\n"
        "h := x\n"
        ";\n"
        "if h > 0 then {\n"
        "    l := 1\n"
        "} else {\n"
        "    skip\n"
        "}\n"
    )
    GOLDEN_PATH = os.path.join(
        os.path.dirname(__file__), "golden", "explain.sarif.json"
    )

    def render_golden(self):
        from repro.analysis.render import dump

        result = analyze_source(
            self.GOLDEN_SOURCE, path="golden.tl",
            options=LintOptions(explain=True),
        )
        return dump(render_sarif(result.diagnostics))

    def test_run_declares_column_kind(self):
        doc = render_sarif([])
        assert doc["runs"][0]["columnKind"] == "utf16CodeUnits"

    def test_rules_carry_help_uri_and_full_description(self):
        doc = render_sarif([])
        for rule in doc["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["helpUri"].startswith("http")
            assert rule["id"].lower() in rule["helpUri"]
            assert rule["fullDescription"]["text"]

    def test_fingerprints_are_stable_and_location_sensitive(self):
        result = analyze("l := h;\nl := h\n", lints=False)
        doc = render_sarif(result.diagnostics)
        prints = [
            r["partialFingerprints"]["reproLint/v1"]
            for r in doc["runs"][0]["results"]
        ]
        assert len(prints) == len(set(prints))  # distinct lines differ
        again = render_sarif(result.diagnostics)
        assert prints == [
            r["partialFingerprints"]["reproLint/v1"]
            for r in again["runs"][0]["results"]
        ]

    def test_code_flows_source_to_sink(self):
        result = analyze_source(
            self.GOLDEN_SOURCE, path="golden.tl",
            options=LintOptions(explain=True),
        )
        doc = render_sarif(result.diagnostics)
        assert_sarif_2_1_0_shape(doc)
        flows = [r for r in doc["runs"][0]["results"] if "codeFlows" in r]
        assert flows
        for r in flows:
            steps = r["codeFlows"][0]["threadFlows"][0]["locations"]
            assert steps[0]["location"]["message"]["text"].startswith(
                "[source]")
            assert steps[-1]["location"]["message"]["text"].startswith(
                "[sink]")
            related = r["relatedLocations"]
            assert [loc["id"] for loc in related] == list(range(len(steps)))

    def test_matches_golden_file(self):
        with open(self.GOLDEN_PATH) as handle:
            golden = handle.read()
        assert self.render_golden() == golden
