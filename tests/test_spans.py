"""Execution timelines: span assembly, the event journal, Chrome export.

Four groups:

* **span assembly** -- the :class:`SpanRecorder` turns the flat hook
  stream into the documented hierarchy (run > mitigate epoch > command /
  padding, hardware bursts as children) with correct interval arithmetic;
* **event journal** -- JSONL round-trip, the bounded ring, and span
  reconstruction from a journal file;
* **Chrome trace export** -- the Perfetto-loadable document satisfies the
  trace-event invariants: every ``B`` has a matching ``E``, timestamps
  are monotone non-decreasing within a track, the whole document is
  JSON-serializable;
* **composition** -- :class:`TeeRecorder` fan-out feeds metrics and spans
  from one execution.
"""

import json

import pytest

from repro.api import compile_program
from repro.lang import DEFAULT_LATTICE
from repro.telemetry import (
    EventJournal,
    RecordingTraceRecorder,
    Span,
    SpanRecorder,
    TeeRecorder,
    chrome_trace,
    load_journal,
    spans_from_journal,
    write_chrome_trace,
)
from repro.telemetry.spans import (
    CATEGORY_COMMAND,
    CATEGORY_HARDWARE,
    CATEGORY_MITIGATE,
    CATEGORY_PADDING,
    CATEGORY_RUN,
    json_safe,
)

LAT = DEFAULT_LATTICE

MITIGATED = (
    "mitigate(16, H) { while h > 0 do { h := h - 1 } };\nready := 1\n"
)
SLEEPY = "sleep(5);\nready := 1\n"


def _run_recorded(source="", gamma=None, memory=None, recorder=None,
                  **kwargs):
    compiled = compile_program(
        source or MITIGATED, gamma or {"h": "H", "ready": "L"}
    )
    result = compiled.run(memory or {"h": 9, "ready": 0},
                          recorder=recorder, **kwargs)
    return compiled, result


def _assert_trace_invariants(doc):
    events = doc["traceEvents"]
    depth = {}
    last_ts = {}
    for event in events:
        if event["ph"] not in ("B", "E"):
            continue
        tid = event["tid"]
        if tid in last_ts:
            assert event["ts"] >= last_ts[tid], (
                f"ts went backwards on tid {tid}: {event}"
            )
        last_ts[tid] = event["ts"]
        depth[tid] = depth.get(tid, 0) + (1 if event["ph"] == "B" else -1)
        assert depth[tid] >= 0, f"E without B on tid {tid}: {event}"
    assert depth and all(v == 0 for v in depth.values()), (
        f"unbalanced B/E pairs: {depth}"
    )


class TestSpanAssembly:
    def test_hierarchy_and_intervals(self):
        recorder = SpanRecorder()
        _, result = _run_recorded(recorder=recorder)
        spans = recorder.spans
        by_id = {s.span_id: s for s in spans}

        runs = [s for s in spans if s.category == CATEGORY_RUN]
        assert len(runs) == 1
        root = runs[0]
        assert root.start == 0 and root.end == result.time
        assert root.attrs["final_time"] == result.time
        assert root.attrs["total_steps"] == result.steps
        assert root.attrs["mitigations"] == 1
        assert root.attrs["hardware"] == "PartitionedHardware"
        assert "DoublingScheme" in root.attrs["mitigation"]

        epochs = [s for s in spans if s.category == CATEGORY_MITIGATE]
        assert len(epochs) == 1
        epoch = epochs[0]
        record = result.mitigations[0]
        assert epoch.name == record.mit_id
        assert epoch.start == record.start_time
        assert epoch.end == record.end_time
        assert epoch.attrs["elapsed"] + epoch.attrs["padding"] == \
            epoch.attrs["padded"] == epoch.duration
        assert epoch.attrs["level"] == "H"
        assert epoch.attrs["estimate"] == 16
        assert epoch.attrs["prediction"] >= 16
        assert epoch.attrs["misses"] >= 1
        assert epoch.attrs["miss_updates"]

        # Every span nests inside its parent's interval.
        for span in spans:
            assert span.end is not None and span.end >= span.start
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.start <= span.start
                assert span.end <= parent.end

    def test_padding_child_covers_the_stretch(self):
        recorder = SpanRecorder()
        _, _ = _run_recorded(recorder=recorder)
        epoch = next(s for s in recorder.spans
                     if s.category == CATEGORY_MITIGATE)
        pads = [s for s in recorder.spans
                if s.category == CATEGORY_PADDING
                and s.parent_id == epoch.span_id]
        assert len(pads) == 1
        pad = pads[0]
        assert pad.start == epoch.start + epoch.attrs["elapsed"]
        assert pad.end == epoch.end
        assert pad.duration == epoch.attrs["padding"] > 0

    def test_command_leaves_cover_machine_time(self):
        recorder = SpanRecorder()
        _, result = _run_recorded(recorder=recorder)
        leaves = [s for s in recorder.spans
                  if s.category == CATEGORY_COMMAND]
        assert leaves
        # Leaf intervals are [time - cost, time] and their costs sum to
        # the machine (non-sleep, non-padding) share of the clock.
        meter = RecordingTraceRecorder()
        _run_recorded(recorder=meter)
        assert sum(s.attrs["cost"] for s in leaves) == \
            meter.registry.machine_cycles()
        for leaf in leaves:
            assert leaf.duration == leaf.attrs["cost"]

    def test_hardware_bursts_attach_to_their_step(self):
        recorder = SpanRecorder()
        _run_recorded(recorder=recorder)
        bursts = [s for s in recorder.spans
                  if s.category == CATEGORY_HARDWARE]
        assert bursts
        commands = {s.span_id for s in recorder.spans
                    if s.category == CATEGORY_COMMAND}
        for burst in bursts:
            assert burst.parent_id in commands
            assert any(".hits" in k or ".misses" in k
                       for k in burst.attrs)

    def test_sleep_spans(self):
        recorder = SpanRecorder()
        _run_recorded(SLEEPY, {"ready": "L"}, {"ready": 0},
                      recorder=recorder)
        sleeps = [s for s in recorder.spans if s.category == "sleep"]
        assert len(sleeps) == 1
        assert sleeps[0].duration == 5

    def test_epochs_detail_aggregates(self):
        recorder = SpanRecorder(detail="epochs")
        _, result = _run_recorded(recorder=recorder)
        categories = {s.category for s in recorder.spans}
        assert CATEGORY_COMMAND not in categories
        assert CATEGORY_HARDWARE not in categories
        epoch = next(s for s in recorder.spans
                     if s.category == CATEGORY_MITIGATE)
        assert epoch.attrs["steps"] > 0
        assert epoch.attrs["machine_cycles"] > 0
        assert any(k.startswith("hw.") for k in epoch.attrs)

    def test_detail_validated(self):
        with pytest.raises(ValueError):
            SpanRecorder(detail="everything")

    def test_multiple_runs_get_distinct_tracks(self):
        recorder = SpanRecorder(detail="epochs")
        compiled = compile_program(MITIGATED, {"h": "H", "ready": "L"})
        for h in (3, 9):
            compiled.run({"h": h, "ready": 0}, recorder=recorder)
        runs = [s for s in recorder.spans if s.category == CATEGORY_RUN]
        assert len(runs) == 2
        assert {s.track for s in runs} == {0, 1}

    def test_keep_spans_off_retains_nothing(self):
        journal = EventJournal()
        recorder = SpanRecorder(journal=journal, keep_spans=False)
        _run_recorded(recorder=recorder)
        assert recorder.spans == []
        assert any(r["type"] == "span" for r in journal.records())


class TestEventJournal:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = EventJournal(str(path))
        recorder = SpanRecorder(journal=journal)
        _, result = _run_recorded(recorder=recorder)
        journal.close()

        records = load_journal(str(path))
        assert records[0]["type"] == "header"
        assert records[0]["schema"] == "repro.telemetry/1"
        kinds = {r["type"] for r in records}
        assert {"header", "run_start", "span", "miss_update",
                "run_end"} <= kinds
        end = next(r for r in records if r["type"] == "run_end")
        assert end["time"] == result.time

        rebuilt = spans_from_journal(records)
        assert sorted(s.span_id for s in rebuilt) == \
            sorted(s.span_id for s in recorder.spans)
        for a, b in zip(rebuilt, sorted(recorder.spans,
                                        key=lambda s: (s.track, s.start,
                                                       s.span_id))):
            assert (a.name, a.category, a.start, a.end) == \
                (b.name, b.category, b.start, b.end)

    def test_ring_bound(self):
        journal = EventJournal(ring_size=10)
        recorder = SpanRecorder(journal=journal, keep_spans=False)
        _run_recorded(recorder=recorder)
        assert len(journal.records()) == 10
        assert journal.emitted > 10

    def test_close_is_idempotent(self, tmp_path):
        journal = EventJournal(str(tmp_path / "j.jsonl"))
        journal.close()
        journal.close()

    def test_context_manager(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EventJournal(str(path)) as journal:
            journal.emit({"type": "run_end", "track": 0, "time": 1,
                          "steps": 1})
        assert len(load_journal(str(path))) == 2

    def test_labels_become_names(self):
        journal = EventJournal()
        journal.emit({"type": "x", "level": LAT["H"],
                      "nested": {"l": LAT["L"]}, "seq": [LAT["H"]]})
        record = journal.records()[-1]
        assert record["level"] == "H"
        assert record["nested"]["l"] == "L"
        assert record["seq"] == ["H"]
        assert json_safe(LAT["H"]) == "H"


class TestChromeTrace:
    def test_invariants_on_a_real_run(self):
        recorder = SpanRecorder()
        _run_recorded(recorder=recorder)
        doc = chrome_trace(recorder.spans)
        _assert_trace_invariants(doc)
        json.dumps(doc)  # Perfetto needs plain JSON
        assert doc["otherData"]["schema"] == "repro.telemetry/1"

    def test_b_e_pairs_match_span_count(self):
        recorder = SpanRecorder()
        _run_recorded(recorder=recorder)
        doc = chrome_trace(recorder.spans)
        begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "E"]
        assert len(begins) == len(ends) == len(recorder.spans)

    def test_counter_and_metadata_events(self):
        recorder = SpanRecorder()
        _run_recorded(recorder=recorder)
        doc = chrome_trace(recorder.spans)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters and all("Miss" in e["name"] for e in counters)
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in metadata)
        assert any(e["name"] == "thread_name" for e in metadata)

    def test_tracks_map_to_tids(self):
        recorder = SpanRecorder(detail="epochs")
        compiled = compile_program(MITIGATED, {"h": "H", "ready": "L"})
        for h in (3, 9):
            compiled.run({"h": h, "ready": 0}, recorder=recorder)
        doc = chrome_trace(recorder.spans)
        _assert_trace_invariants(doc)
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "B"}
        assert len(tids) == 2

    def test_write_chrome_trace(self, tmp_path):
        recorder = SpanRecorder()
        _run_recorded(recorder=recorder)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), recorder.spans)
        _assert_trace_invariants(json.loads(path.read_text()))

    def test_open_spans_are_skipped(self):
        open_span = Span(span_id=0, parent_id=None, track=0, name="open",
                         category=CATEGORY_RUN, start=0, end=None)
        doc = chrome_trace([open_span])
        assert [e for e in doc["traceEvents"] if e["ph"] in "BE"] == []


class TestTeeRecorder:
    def test_fan_out_feeds_both_sinks(self):
        metrics = RecordingTraceRecorder()
        spans = SpanRecorder()
        tee = TeeRecorder(metrics, spans)
        assert tee.active is True
        _, result = _run_recorded(recorder=tee)
        assert metrics.registry.counter("runs") == 1
        assert metrics.registry.final_cycles() == result.time
        assert any(s.category == CATEGORY_MITIGATE for s in spans.spans)

    def test_none_recorders_dropped(self):
        spans = SpanRecorder()
        tee = TeeRecorder(None, spans, None)
        _run_recorded(recorder=tee)
        assert spans.spans
