"""The telemetry layer: zero interference, correct accounting, CLI surface.

Three groups:

* **non-interference regression** -- running with no recorder, with the
  shared ``NULL_RECORDER``, with a full ``RecordingTraceRecorder``, with a
  ``SpanRecorder``, and with a journaling ``TeeRecorder`` fan-out must all
  produce byte-identical ``ExecutionResult``s over a fixed corpus of
  generated programs (recorders are observers, never participants);
* **unit accounting** -- the registry's counters/gauges/histograms/series,
  the JSON document, and the leakage meter's Definition-2 relevance
  filtering and bound arithmetic;
* **CLI surface** -- ``repro run --trace`` and ``--metrics-out``.
"""

import json
import math
import os
import random

import pytest

from repro.api import compile_program
from repro.cli import main
from repro.hardware import PartitionedHardware, tiny_machine
from repro.lang import DEFAULT_LATTICE
from repro.semantics.full import execute
from repro.semantics.mitigation import MitigationState
from repro.telemetry import (
    NULL_RECORDER,
    DynamicLeakageMeter,
    EventJournal,
    LeakageBoundViolation,
    MetricsRegistry,
    RecordingTraceRecorder,
    SCHEMA,
    SpanRecorder,
    TeeRecorder,
)
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import TypingError, infer_labels, typecheck

LAT = DEFAULT_LATTICE

MITIGATE_HEAVY = GeneratorConfig(
    max_depth=3,
    max_block_length=3,
    weights={
        "assign": 0.30,
        "skip": 0.05,
        "sleep": 0.15,
        "if": 0.15,
        "while": 0.10,
        "mitigate": 0.25,
    },
)

#: Seeds whose generated programs form the regression corpus; extended far
#: enough that several typecheck (ill-typed draws are skipped).
CORPUS_SEEDS = tuple(range(0, 40))


def _generated(seed):
    gamma = standard_gamma(LAT)
    gen = ProgramGenerator(gamma, random.Random(seed), MITIGATE_HEAVY)
    program = gen.program()
    infer_labels(program, gamma)
    try:
        info = typecheck(program, gamma)
    except TypingError:
        return None
    return program, gamma, info, gen


def _run(program, info, memory, recorder):
    return execute(
        program,
        memory.copy(),
        PartitionedHardware(LAT, tiny_machine()),
        mitigation=MitigationState(),
        mitigate_pc=info.mitigate_pc,
        recorder=recorder,
    )


MITIGATED = (
    "mitigate(16, H) { while h > 0 do { h := h - 1 } };\nready := 1\n"
)


class TestNonInterference:
    def test_recorders_never_change_results(self):
        checked = 0
        for seed in CORPUS_SEEDS:
            generated = _generated(seed)
            if generated is None:
                continue
            program, gamma, info, gen = generated
            memory = gen.memory()
            bare = _run(program, info, memory, None)
            null = _run(program, info, memory, NULL_RECORDER)
            recorded = _run(
                program, info, memory, RecordingTraceRecorder()
            )
            spanned = _run(program, info, memory, SpanRecorder())
            teed = _run(
                program, info, memory,
                TeeRecorder(RecordingTraceRecorder(),
                            SpanRecorder(journal=EventJournal())),
            )
            for other in (null, recorded, spanned, teed):
                assert other.time == bare.time
                assert other.steps == bare.steps
                assert other.events == bare.events
                assert other.mitigations == bare.mitigations
                assert other.memory == bare.memory
            checked += 1
        assert checked >= 5, "corpus produced too few well-typed programs"

    def test_null_recorder_is_inactive(self):
        assert NULL_RECORDER.active is False
        assert RecordingTraceRecorder().active is True

    def test_recording_matches_execution_result(self):
        compiled = compile_program(MITIGATED, {"h": "H", "ready": "L"})
        recorder = RecordingTraceRecorder()
        result = compiled.run({"h": 9, "ready": 0}, recorder=recorder)
        reg = recorder.registry
        assert reg.counter("runs") == 1
        assert reg.final_cycles() == result.time
        assert (reg.machine_cycles() + reg.counter("cycles.sleep")
                + reg.padding_cycles()) == result.time
        assert reg.counter("mitigation.completions") == len(
            result.mitigations
        )
        # The padded block total is the record's duration, so pure padding
        # can never exceed it.
        assert 0 <= reg.padding_cycles() <= sum(
            r.duration for r in result.mitigations
        )


class TestMetricsRegistry:
    def test_counters_gauges_histograms_series(self):
        reg = MetricsRegistry()
        reg.inc("steps.total")
        reg.inc("steps.total", 4)
        reg.set_gauge("miss.H", 2)
        reg.set_gauge("miss.H", 3)
        reg.observe("hist.x", 7)
        reg.observe("hist.x", 7)
        reg.append_series("miss_trace.H", 1)
        reg.append_series("miss_trace.H", 2)
        assert reg.counter("steps.total") == 5
        assert reg.counter("never.touched") == 0
        assert reg.gauge("miss.H") == 3
        assert reg.miss_counters() == {"H": 3}
        assert reg.histograms["hist.x"] == {7: 2}
        assert reg.series["miss_trace.H"] == [1, 2]

    def test_overhead_ratio(self):
        reg = MetricsRegistry()
        assert reg.padding_overhead_ratio() == 0.0
        reg.inc("cycles.final", 200)
        reg.inc("cycles.padding", 50)
        assert reg.padding_overhead_ratio() == pytest.approx(0.25)

    def test_as_dict_sections(self):
        reg = MetricsRegistry()
        reg.inc("runs")
        reg.inc("cycles.machine", 90)
        reg.inc("cycles.padding", 10)
        reg.inc("cycles.final", 100)
        reg.inc("hw.l1d.hits", 3)
        reg.set_gauge("miss.H", 1)
        doc = reg.as_dict()
        assert doc["schema"] == SCHEMA
        assert doc["runs"] == 1
        assert doc["timing"]["machine_cycles"] == 90
        assert doc["timing"]["padding_cycles"] == 10
        assert doc["timing"]["padding_overhead_ratio"] == pytest.approx(0.1)
        assert doc["mitigation"]["miss_per_level"] == {"H": 1}
        assert doc["hardware"]["cache"] == {
            "l1d": {"hits": 3, "misses": 0}
        }
        # The document must round-trip through JSON unchanged.
        assert json.loads(reg.to_json()) == json.loads(
            json.dumps(doc)
        )

    def test_write(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("runs")
        path = tmp_path / "m.json"
        reg.write(str(path), leakage={"within_bound": True})
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["leakage"] == {"within_bound": True}


class TestDynamicLeakageMeter:
    def _meter(self):
        return DynamicLeakageMeter(LAT)

    def test_relevance_filtering(self):
        meter = self._meter()
        high, low = LAT["H"], LAT["L"]
        # Low-context high mitigation: relevant (Definition 2).
        meter.observe("m1", high, 4, 8, low)
        # High-context mitigation: projected away.
        meter.observe("m2", high, 4, 16, high)
        # Low-level mitigation: cannot carry the varied secrets.
        meter.observe("m3", low, 4, 32, low)
        meter.end_run(final_time=100)
        assert meter.sequences == {(8,)}
        assert meter.max_relevant_per_run == 1

    def test_unknown_pc_counts_as_low_context(self):
        meter = self._meter()
        meter.observe("m", LAT["H"], 4, 8, None)
        meter.end_run(final_time=10)
        assert meter.sequences == {(8,)}

    def test_observed_bits_and_bound(self):
        meter = self._meter()
        for duration in (8, 16, 32, 64):
            meter.observe("m", LAT["H"], 8, duration, LAT["L"])
            meter.end_run(final_time=duration + 10)
        assert meter.observed_variations == 4
        assert meter.observed_bits == pytest.approx(2.0)
        # Two-point lattice, K=1, T=74: bound = 1 * log2(2) * (1 + log2 74).
        assert meter.static_bound_bits() == pytest.approx(
            1 + math.log2(74)
        )
        assert meter.holds()
        meter.assert_within_bound(check_doubling=True)

    def test_violation_raises(self):
        meter = self._meter()
        # T = 1 makes the static bound 1 bit; three distinct sequences
        # claim log2(3) > 1 bits.
        for duration in (1, 2, 3):
            meter.observe("m", LAT["H"], 1, duration, LAT["L"])
            meter.end_run(final_time=1)
        assert not meter.holds()
        with pytest.raises(LeakageBoundViolation):
            meter.assert_within_bound()

    def test_doubling_corollary_violation(self):
        meter = self._meter()
        # Durations off the n*2^k schedule: more distinct values than the
        # fast-doubling scheme can produce within T.
        for duration in (4, 5, 6, 7):
            meter.observe("m", LAT["H"], 4, duration, LAT["L"])
        meter.end_run(final_time=8)
        assert meter.doubling_violations()
        with pytest.raises(LeakageBoundViolation):
            meter.assert_within_bound(check_doubling=True)

    def test_as_dict(self):
        meter = self._meter()
        meter.observe("m", LAT["H"], 4, 8, LAT["L"])
        meter.end_run(final_time=20)
        doc = meter.as_dict()
        assert doc["within_bound"] is True
        assert doc["observed_variations"] == 1
        assert doc["per_command_distinct_durations"] == {"m": 1}
        json.dumps(doc)  # must be JSON-serializable as-is


@pytest.fixture()
def mitigated(tmp_path):
    path = tmp_path / "mitigated.tl"
    path.write_text(MITIGATED)
    return str(path)


class TestCli:
    def test_trace_prints_summary(self, mitigated, capsys):
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--hardware", "partitioned", "--trace"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "padding" in out
        assert "leakage:" in out and "ok" in out

    def test_metrics_out_writes_document(self, mitigated, capsys, tmp_path):
        out_path = tmp_path / "metrics.json"
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--hardware", "partitioned",
                   "--metrics-out", str(out_path)])
        assert rc == 0
        assert f"metrics written to {out_path}" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["timing"]["padding_cycles"] >= 0
        assert doc["timing"]["final_cycles"] > 0
        assert doc["mitigation"]["completions"] == 1
        assert doc["mitigation"]["miss_per_level"]
        assert doc["leakage"]["within_bound"] is True
        assert doc["leakage"]["observed_bits"] <= (
            doc["leakage"]["static_bound_bits"]
        )

    def test_plain_run_has_no_telemetry(self, mitigated, capsys):
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--hardware", "partitioned"])
        assert rc == 0
        assert "telemetry:" not in capsys.readouterr().out

    def test_trace_out_writes_chrome_trace(self, capsys, tmp_path):
        example = os.path.join(os.path.dirname(__file__), "..",
                               "examples", "mitigate_demo.tl")
        out_path = tmp_path / "trace.json"
        rc = main(["run", example, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--trace-out", str(out_path)])
        assert rc == 0
        assert "trace written to" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        # Chrome trace-event invariants: balanced B/E pairs, monotone
        # timestamps per track.
        depth, last = {}, {}
        for event in doc["traceEvents"]:
            if event["ph"] not in ("B", "E"):
                continue
            tid = event["tid"]
            assert event["ts"] >= last.get(tid, 0)
            last[tid] = event["ts"]
            depth[tid] = depth.get(tid, 0) + (1 if event["ph"] == "B"
                                              else -1)
            assert depth[tid] >= 0
        assert depth and all(v == 0 for v in depth.values())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"run", "mitigate", "padding"} <= cats

    def test_journal_out_streams_jsonl(self, mitigated, capsys, tmp_path):
        out_path = tmp_path / "journal.jsonl"
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--journal-out", str(out_path)])
        assert rc == 0
        assert "journal written to" in capsys.readouterr().out
        records = [json.loads(line)
                   for line in out_path.read_text().splitlines()]
        assert records[0] == {"type": "header", "schema": SCHEMA,
                              "kind": "journal"}
        kinds = {r["type"] for r in records}
        assert {"run_start", "span", "miss_update", "run_end"} <= kinds

    def test_trace_out_composes_with_metrics(self, mitigated, tmp_path):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--trace-out", str(trace_path),
                   "--metrics-out", str(metrics_path)])
        assert rc == 0
        trace = json.loads(trace_path.read_text())
        metrics = json.loads(metrics_path.read_text())
        # Both sinks saw the same execution: the run span's final time is
        # the metrics document's final clock.
        run_end = max(e["ts"] for e in trace["traceEvents"]
                      if e["ph"] == "E" and e.get("cat") == "run")
        assert run_end == metrics["timing"]["final_cycles"]

    def test_leakage_metrics_out_covers_the_sweep(self, mitigated, capsys,
                                                  tmp_path):
        out_path = tmp_path / "sweep.json"
        rc = main(["leakage", mitigated, "--gamma", "h=H,ready=L",
                   "--secret", "h", "--values", "0..8",
                   "--hardware", "null", "--trace",
                   "--metrics-out", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == SCHEMA
        # One document for the whole sweep: 8 variants x (Definition 1 +
        # Definition 2 passes) = 16 runs.
        assert doc["runs"] == 16
        assert doc["sweep"]["secret"] == "h"
        assert doc["sweep"]["values"] == [0, 8]
        assert doc["sweep"]["theorem2_holds"] is True
        assert doc["leakage"]["within_bound"] is True
