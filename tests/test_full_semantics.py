"""Unit tests for the full (timed) semantics: configurations (c, m, E, G)."""

import pytest

from repro.lang import DEFAULT_LATTICE, parse
from repro.machine import Layout, Memory
from repro.hardware import (
    NullHardware,
    PartitionedHardware,
    StandardHardware,
    tiny_machine,
)
from repro.semantics import (
    MitigationState,
    SemanticsError,
    check_adequacy,
    check_sequential_composition,
    check_sleep_accuracy,
    execute,
    observable_events,
)

LAT = DEFAULT_LATTICE


def run(src, mem, hardware=None, **kw):
    env = hardware if hardware is not None else NullHardware(LAT)
    return execute(parse(src), Memory(mem), env, **kw)


class TestTiming:
    def test_time_accumulates(self):
        r1 = run("skip [L,L]", {})
        r2 = run("skip [L,L]; skip [L,L]", {})
        assert r2.time == 2 * r1.time

    def test_sleep_exact_duration(self):
        # Property 4: sleep(n) takes exactly max(n, 0).
        assert run("sleep(7) [L,L]", {}).time == 7
        assert run("sleep(0) [L,L]", {}).time == 0

    def test_sleep_negative_takes_no_time(self):
        assert run("sleep(0 - 5) [L,L]", {}).time == 0

    def test_sleep_of_variable(self):
        assert run("sleep(h) [H,H]", {"h": 42}).time == 42

    def test_direct_channel_example(self):
        # Sec. 2.1: control flow affects timing.
        src = "if h then { sleep(1) [H,H] } else { sleep(10) [H,H] } [H,H]"
        t1 = run(src, {"h": 1}).time
        t0 = run(src, {"h": 0}).time
        assert t0 - t1 == 9

    def test_seq_adds_no_cost(self):
        base = run("skip [L,L]", {}).time
        seq = run("skip [L,L]; skip [L,L]; skip [L,L]", {}).time
        assert seq == 3 * base

    def test_missing_labels_rejected(self):
        with pytest.raises(SemanticsError, match="no timing labels"):
            run("skip", {})

    def test_steps_counted(self):
        r = run("skip [L,L]; skip [L,L]", {})
        assert r.steps == 2


class TestEvents:
    def test_assignment_event(self):
        r = run("x := 5 [L,L]", {"x": 0})
        assert len(r.events) == 1
        e = r.events[0]
        assert (e.name, e.value) == ("x", 5)
        assert e.time == r.time

    def test_array_event_carries_index(self):
        r = run("a[1] := 9 [L,L]", {"a": [0, 0]})
        assert r.events[0].index == 1
        assert r.events[0].location() == "a[1]"

    def test_event_order_and_times_monotone(self):
        r = run("x := 1 [L,L]; y := 2 [L,L]; x := 3 [L,L]",
                {"x": 0, "y": 0})
        names = [e.name for e in r.events]
        assert names == ["x", "y", "x"]
        times = [e.time for e in r.events]
        assert times == sorted(times)

    def test_observable_projection(self):
        r = run("l := 1 [L,L]; h := 2 [H,H]", {"l": 0, "h": 0})
        gamma = {"l": LAT["L"], "h": LAT["H"]}
        low = observable_events(r.events, gamma, LAT["L"])
        assert [e.name for e in low] == ["l"]
        high = observable_events(r.events, gamma, LAT["H"])
        assert [e.name for e in high] == ["l", "h"]

    def test_guard_evaluation_emits_no_event(self):
        r = run("if x then { skip [L,L] } else { skip [L,L] } [L,L]",
                {"x": 1})
        assert r.events == ()


class TestMitigateExecution:
    def test_pads_to_prediction(self):
        r = run("mitigate(100, H) { sleep(3) [H,H] } [L,L]", {})
        assert len(r.mitigations) == 1
        assert r.mitigations[0].duration == 100

    def test_doubles_on_misprediction(self):
        r = run("mitigate(10, H) { sleep(25) [H,H] } [L,L]", {})
        # 10 -> 20 -> 40: first prediction > 25.
        assert r.mitigations[0].duration == 40

    def test_exact_boundary_counts_as_miss(self):
        # Fig. 6's update loop uses >=: elapsed == prediction bumps it.
        r = run("mitigate(10, H) { sleep(10) [H,H] } [L,L]", {})
        assert r.mitigations[0].duration == 20

    def test_zero_estimate_clamped_to_one(self):
        r = run("mitigate(0, H) { skip [L,L] } [L,L]", {})
        assert r.mitigations[0].duration >= 1

    def test_miss_state_inflates_later_blocks(self):
        src = ("mitigate(10, H) { sleep(25) [H,H] } [L,L];"
               "mitigate(10, H) { sleep(1) [H,H] } [L,L]")
        r = run(src, {})
        durations = [m.duration for m in r.mitigations]
        # Second block inherits Miss[H]=2 from the first: 10 * 2^2 = 40.
        assert durations == [40, 40]

    def test_possible_durations_are_powers_of_two(self):
        # Sec. 2.3: execution times forced to n * powers of 2.
        seen = set()
        for h in range(1, 60):
            r = run("mitigate(4, H) { sleep(h) [H,H] } [L,L]", {"h": h})
            seen.add(r.mitigations[0].duration)
        assert seen <= {4 * 2 ** k for k in range(8)}

    def test_nested_mitigations_both_recorded(self):
        src = ("mitigate(50, H) { mitigate(5, H) { sleep(1) [H,H] } [L,L] }"
               " [L,L]")
        r = run(src, {})
        assert len(r.mitigations) == 2
        inner, outer = r.mitigations
        assert inner.end_time <= outer.end_time

    def test_records_ordered_by_completion(self):
        src = ("mitigate(8, H) { sleep(1) [H,H] } [L,L];"
               "mitigate(8, H) { sleep(2) [H,H] } [L,L]")
        r = run(src, {})
        ends = [m.end_time for m in r.mitigations]
        assert ends == sorted(ends)

    def test_budget_expression_evaluated(self):
        r = run("mitigate(n * 2, H) { sleep(1) [H,H] } [L,L]", {"n": 16})
        assert r.mitigations[0].duration == 32

    def test_mitigate_pc_attached(self):
        prog = parse("mitigate@m1 (8, H) { sleep(1) [H,H] } [L,L]")
        r = execute(prog, Memory({}), NullHardware(LAT),
                    mitigate_pc={"m1": LAT["L"]})
        assert r.mitigations[0].pc_label == LAT["L"]
        assert r.mitigations[0].mit_id == "m1"

    def test_shared_state_across_runs(self):
        state = MitigationState()
        src = "mitigate(10, H) { sleep(25) [H,H] } [L,L]"
        r1 = execute(parse(src), Memory({}), NullHardware(LAT),
                     mitigation=state)
        r2 = execute(parse(src), Memory({}), NullHardware(LAT),
                     mitigation=state)
        assert r1.mitigations[0].duration == 40
        # Second run starts with Miss[H]=2 and never mispredicts.
        assert r2.mitigations[0].duration == 40


class TestDeterminism:
    def test_same_inputs_same_everything(self):
        src = """
        x := 0 [L,L];
        while x < 5 do { x := x + 1 [L,L]; a[x % 3] := x [L,L] } [L,L]
        """
        results = [
            run(src, {"x": 0, "a": [0, 0, 0]},
                hardware=StandardHardware(LAT, tiny_machine()))
            for _ in range(2)
        ]
        assert results[0].time == results[1].time
        assert results[0].events == results[1].events
        assert (results[0].environment.full_state()
                == results[1].environment.full_state())


class TestFaithfulnessCheckers:
    PROGRAMS = [
        ("x := 1 [L,L]; y := x + 1 [L,L]", {"x": 0, "y": 0}),
        ("while x > 0 do { x := x - 1 [L,L] } [L,L]", {"x": 5}),
        ("mitigate(4, H) { sleep(x) [H,H] } [L,L]; y := 1 [L,L]",
         {"x": 9, "y": 0}),
        ("if h then { h := 1 [H,H] } else { h := 2 [H,H] } [H,H]",
         {"h": 3}),
    ]

    @pytest.mark.parametrize("src,mem", PROGRAMS)
    def test_adequacy(self, src, mem):
        for env in (NullHardware(LAT),
                    StandardHardware(LAT, tiny_machine()),
                    PartitionedHardware(LAT, tiny_machine())):
            assert check_adequacy(parse(src), Memory(mem), env) == []

    def test_sequential_composition(self):
        c1 = parse("x := 1 [L,L]; sleep(3) [L,L]")
        c2 = parse("y := x + 1 [L,L]")
        for env in (NullHardware(LAT),
                    PartitionedHardware(LAT, tiny_machine())):
            violations = check_sequential_composition(
                c1, c2, Memory({"x": 0, "y": 0}), env
            )
            assert violations == []

    def test_sleep_accuracy(self):
        for env in (NullHardware(LAT),
                    StandardHardware(LAT, tiny_machine()),
                    PartitionedHardware(LAT, tiny_machine())):
            assert check_sleep_accuracy([-3, 0, 1, 17, 100], env) == []


class TestLayoutSharing:
    def test_explicit_layout_reused(self):
        prog = parse("x := 1 [L,L]")
        mem = Memory({"x": 0})
        layout = Layout.build(prog, mem)
        r = execute(prog, mem.copy(), NullHardware(LAT), layout=layout)
        assert r.time > 0
