"""Automatic mitigate placement (typesystem.suggest)."""

import random

import pytest

from repro.lang import DEFAULT_LATTICE, ast, mitigates, parse
from repro.lattice import chain
from repro.machine import Memory
from repro.hardware import NullHardware
from repro.semantics import run_core
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import (
    SecurityEnvironment,
    UnmitigatableError,
    auto_mitigate,
    infer_labels,
    is_well_typed,
    suggest_mitigations,
    typecheck,
)

LAT = DEFAULT_LATTICE


def gamma(**names):
    return SecurityEnvironment(LAT, {n: LAT[v] for n, v in names.items()})


def repaired(src, g):
    prog = infer_labels(parse(src), g)
    fixed, placements = auto_mitigate(prog, g)
    typecheck(fixed, g)  # must hold afterwards
    return fixed, placements


class TestBasicRepair:
    def test_sleep_leak_wrapped(self):
        g = gamma(h="H", l="L")
        fixed, placements = repaired("sleep(h); l := 1", g)
        assert len(placements) == 1
        assert placements[0].level == LAT["H"]
        assert len(mitigates(fixed)) == 1

    def test_already_well_typed_untouched(self):
        g = gamma(h="H", l="L")
        fixed, placements = repaired("l := 1; h := h + 1", g)
        assert placements == []
        assert len(mitigates(fixed)) == 0

    def test_minimal_wrap(self):
        # Only the taint-raising suffix is wrapped; the public prefix stays
        # outside.
        g = gamma(h="H", l="L", g="H")
        fixed, placements = repaired(
            "l := 1; l := 2; while h > 0 do { h := h - 1 }; l := 3", g
        )
        assert len(placements) == 1
        wrapped = placements[0].wrapped
        assert all(not isinstance(c, ast.Assign) or c.target != "l"
                   for c in wrapped)

    def test_multiple_regions(self):
        g = gamma(h="H", l="L", g="H")
        fixed, placements = repaired(
            "sleep(h); l := 1; g := h; sleep(g); l := 2", g
        )
        assert len(placements) == 2

    def test_repair_inside_branch(self):
        # The leak is within a (public-guard) branch body.
        g = gamma(h="H", l="L", p="L")
        src = "if p then { sleep(h); l := 1 } else { l := 2 }; l := 3"
        fixed, placements = repaired(src, g)
        assert len(placements) == 1

    def test_repair_inside_loop_body(self):
        g = gamma(h="H", l="L", n="L")
        src = ("while n > 0 do { sleep(h); l := n; n := n - 1 };"
               "l := 0")
        fixed, placements = repaired(src, g)
        assert placements  # mitigate inserted inside the loop body
        typecheck(fixed, g)

    def test_levels_minimal(self):
        lat = chain(("L", "M", "H"))
        g = SecurityEnvironment(lat, {"m": lat["M"], "l": lat["L"]})
        prog = infer_labels(parse("sleep(m); l := 1", lat), g)
        fixed, placements = auto_mitigate(prog, g)
        assert placements[0].level == lat["M"]  # not top


class TestUnrepairable:
    def test_explicit_flow(self):
        g = gamma(h="H", l="L")
        prog = infer_labels(parse("l := h"), g)
        with pytest.raises(UnmitigatableError):
            auto_mitigate(prog, g)

    def test_implicit_flow(self):
        g = gamma(h="H", l="L")
        prog = infer_labels(
            parse("if h then { l := 1 } else { l := 2 }"), g
        )
        with pytest.raises(UnmitigatableError):
            auto_mitigate(prog, g)


class TestSemanticsPreserved:
    def test_core_semantics_unchanged(self):
        # mitigate is the identity under the core semantics, so the repair
        # must not change what the program computes.
        g = gamma(h="H", l="L", g="H")
        src = "l := 5; while h > 0 do { g := g + h; h := h - 1 }; l := l + 1"
        original = infer_labels(parse(src), g)
        m1 = run_core(parse(src), Memory({"h": 4, "l": 0, "g": 0}))
        fixed, _ = auto_mitigate(original, g)
        m2 = run_core(fixed, Memory({"h": 4, "l": 0, "g": 0}))
        assert m1 == m2

    def test_repaired_program_runs_timed(self):
        g = gamma(h="H", l="L")
        fixed, _ = repaired("sleep(h); l := 1", g)
        from repro.semantics import execute

        r = execute(fixed, Memory({"h": 9, "l": 0}), NullHardware(LAT))
        assert r.memory.read("l") == 1
        assert r.mitigations


class TestSuggestNonMutating:
    def test_input_untouched(self):
        g = gamma(h="H", l="L")
        prog = infer_labels(parse("sleep(h); l := 1"), g)
        before = len(mitigates(prog))
        placements = suggest_mitigations(prog, g)
        assert len(mitigates(prog)) == before
        assert len(placements) == 1
        assert "mitigate" in placements[0].describe()


class TestRandomizedRepair:
    def test_random_leaky_programs(self):
        # Generate programs that interleave high work with public
        # assignments; auto_mitigate must always repair them (the taint
        # failures it creates are timing-induced by construction).
        g = standard_gamma(LAT)
        repaired_count = 0
        for seed in range(40):
            rng = random.Random(seed * 31337)
            gen = ProgramGenerator(
                g, rng,
                GeneratorConfig(max_depth=2, max_block_length=3,
                                allow_mitigate=False),
            )
            # Leaky construction: high block, then a public assignment.
            parts = [gen.program() for _ in range(2)]
            prog = ast.seq(
                parts[0],
                ast.Assign(target="l0", expr=ast.IntLit(1)),
                parts[1],
                ast.Assign(target="l1", expr=ast.IntLit(2)),
            )
            infer_labels(prog, g)
            if is_well_typed(prog, g):
                continue
            fixed, placements = auto_mitigate(prog, g)
            typecheck(fixed, g)
            assert placements
            repaired_count += 1
        assert repaired_count >= 10
