"""The static cycle-cost analyzer: intervals, contracts, soundness,
the cost-backed lints TL021-TL025, and the ``repro cost`` CLI."""

import glob
import json
import os

import pytest

from repro.analysis import analyze_source
from repro.analysis.cost import (
    check_corpus,
    compute_cost,
    default_memory,
    replay_program,
    unpadded_regions,
)
from repro.analysis.engine import LintOptions
from repro.analysis.rules import COST_RULE_CODES
from repro.cli import main
from repro.hardware.costmodel import (
    ZERO,
    CacheGeometry,
    CostContract,
    Interval,
    contract_for,
)
from repro.hardware.registry import REGISTRY
from repro.lang import parse

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")
LINT_DIR = os.path.join(REPO_ROOT, "examples", "lint")
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")


def analyze(source, **kw):
    options = LintOptions(**{"gamma": {"h": "H", "l": "L"}, **kw})
    return analyze_source(source, path="test.tl", options=options)


def codes(result):
    return [d.code for d in result.diagnostics]


class TestInterval:
    def test_exact_and_top(self):
        assert Interval.exact(5) == Interval(5, 5)
        assert Interval.exact(5).is_exact
        top = Interval.top(3)
        assert top.hi is None and not top.is_exact

    def test_add_propagates_top(self):
        assert Interval(1, 2) + Interval(3, 4) == Interval(4, 6)
        s = Interval(1, 2) + Interval.top(3)
        assert s.lo == 4 and s.hi is None

    def test_join_is_hull(self):
        assert Interval(1, 2).join(Interval(5, 9)) == Interval(1, 9)
        j = Interval(5, 9).join(Interval.top(1))
        assert j.lo == 1 and j.hi is None

    def test_contains(self):
        assert Interval(3, 9).contains(3)
        assert Interval(3, 9).contains(9)
        assert not Interval(3, 9).contains(10)
        assert Interval.top(3).contains(10 ** 9)
        assert not Interval.top(3).contains(2)

    def test_disjoint_and_gap(self):
        a, b = Interval(1, 3), Interval(7, 9)
        assert a.disjoint_from(b) and b.disjoint_from(a)
        assert a.gap(b) == 4
        assert not Interval(1, 5).disjoint_from(Interval(5, 9))
        assert not Interval.top(1).disjoint_from(Interval(100, 100))

    def test_str(self):
        assert str(Interval(1, 2)) == "[1, 2]"
        assert str(Interval.top(4)) == "[4, ⊤]"
        assert ZERO == Interval(0, 0)


class TestContracts:
    """Per-model cost contracts derived from the hardware registry."""

    PROG = ("x := 1;\n"
            "if x > 0 then { y := x + 2 } else { skip }\n")

    def test_every_registry_model_has_a_contract(self):
        program = parse("skip\n")
        for name in REGISTRY.names():
            contract = contract_for(name)
            assert isinstance(contract, CostContract)
            assert compute_cost(program, hardware=name).hardware == name

    def test_unknown_model_rejected(self):
        with pytest.raises(Exception):
            contract_for("nosuch")

    def test_null_model_is_exact(self):
        report = compute_cost(parse(self.PROG))
        assert report.hardware == "null"
        assert report.program.is_exact

    def test_null_contained_in_cache_envelopes(self):
        program = parse(self.PROG)
        exact = compute_cost(program).program
        for name in ("standard", "nofill", "partitioned", "writeback",
                     "speculative", "frequency", "leakytlb"):
            envelope = compute_cost(program, hardware=name).program
            assert envelope.lo <= exact.lo, name
            assert envelope.hi is None or envelope.hi >= exact.hi, name
        # The bus model adds guaranteed queue stalls, raising even the
        # best case above the null floor -- only the ceiling must cover.
        bus = compute_cost(program, hardware="bus").program
        assert bus.hi >= exact.hi

    def test_frequency_stretches_worst_case(self):
        program = parse(self.PROG)
        standard = compute_cost(program, hardware="standard").program
        frequency = compute_cost(program, hardware="frequency").program
        assert frequency.hi == 2 * standard.hi

    def test_geometry_from_l1(self):
        geometry = CacheGeometry.of(contract_for("standard").params.l1_data)
        assert geometry.sets > 1 and geometry.block_bytes > 0
        assert contract_for("null").geometry() is None


class TestComputeCost:
    def test_constant_loop_unrolled_exactly(self):
        bounded = compute_cost(parse(
            "i := 4;\nwhile i > 0 do { i := i - 1 }\n"))
        assert bounded.program.is_exact
        assert not bounded.notes
        (loop,) = bounded.loops.values()
        assert loop.unrolled == 4 and not loop.widened

    def test_unbounded_loop_widens_to_top(self):
        report = compute_cost(parse("while h > 0 do { h := h - 1 }\n"))
        assert report.program.hi is None
        (loop,) = report.loops.values()
        assert loop.widened
        assert report.notes and "unbounded" in report.notes[0].message

    def test_branch_and_mitigate_sites_recorded(self):
        report = compute_cost(parse(
            "mitigate(8, H) { if h > 0 then { x := h } else { skip } }\n"))
        (site,) = report.mitigates.values()
        assert site.budget == 8 and site.initial_prediction == 8
        (branch,) = report.branches.values()
        assert branch.then_interval.lo >= branch.else_interval.lo

    def test_sleep_counts_as_unpadded_time(self):
        report = compute_cost(parse("sleep(10)\n"))
        assert report.program.lo >= 10

    def test_as_dict_round_trips_json(self):
        report = compute_cost(parse(self.SIMPLE), hardware="bus")
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["hardware"] == "bus"
        assert payload["program"] == [report.program.lo, report.program.hi]

    SIMPLE = "x := 1;\ny := x + 2\n"


class TestSoundness:
    """Profiler-replay cross-check: observed unpadded cycles must fall
    inside the static interval, per region, on every hardware model."""

    def test_unpadded_regions_strips_nested_padding(self):
        total, regions = unpadded_regions(
            [("inner", 5, 20, 30), ("outer", 40, 60, 70)], 100)
        # outer window [10, 50] contains inner epoch [10, 30]: the inner
        # 15 cycles of padding are not body work.
        assert dict(regions)["outer"] == 40 - 15
        assert dict(regions)["inner"] == 5
        assert total == 100 - 15 - 20

    def test_default_memory_covers_arrays(self):
        memory = default_memory(parse("a[0] := 1;\nx := a[3]\n"))
        assert isinstance(memory["a"], list) and memory["x"] == 0

    def test_replay_single_program(self):
        check = replay_program(
            "// gamma: h=H, ready=L\n"
            "mitigate(16, H) { h := h + 1 };\nready := 1\n",
            hardware="standard")
        assert check.status == "checked"
        assert not check.violations
        assert any(o.region == "<program>" for o in check.observations)
        assert any(o.region != "<program>" for o in check.observations)

    def test_corpus_sound_on_every_model(self):
        paths = sorted(
            glob.glob(os.path.join(LINT_DIR, "*.tl"))
            + glob.glob(os.path.join(EXAMPLES_DIR, "*.tl")))
        assert paths
        checks = check_corpus(paths)
        assert len(checks) == len(paths) * len(REGISTRY.names())
        violations = [c for c in checks if c.violations]
        assert violations == []
        checked = [c for c in checks if c.status == "checked"]
        assert len(checked) >= len(checks) // 2
        # Only deliberately broken fixtures may skip.
        for check in checks:
            if check.status == "skipped":
                assert os.path.basename(check.path) in {
                    "tl000_syntax_error.tl",
                }, (check.path, check.reason)


FIRING = {
    "TL021": "tl021_unbalanced_secret_branch.tl",
    "TL022": "tl022_mitigate_quantum_insufficient.tl",
    "TL023": "tl023_overprovisioned_mitigate.tl",
    "TL024": "tl024_unbounded_secret_loop_cost.tl",
    "TL025": "tl025_cost_divergent_array_access.tl",
}

NEAR_MISS = {
    "TL021": "near_tl021_balanced_branch.tl",
    "TL022": "near_tl022_budget_covers_body.tl",
    "TL023": "near_tl023_modest_budget.tl",
    "TL024": "near_tl024_unconditional_public_loop.tl",
    "TL025": "near_tl025_single_block_index.tl",
}


def _analyze_fixture(name):
    path = os.path.join(LINT_DIR, name)
    with open(path) as handle:
        source = handle.read()
    return analyze_source(source, path=path, options=LintOptions())


class TestCostLints:
    """TL021-TL025 fire on their fixture and stay silent on the
    adjacent near-miss."""

    @pytest.mark.parametrize("code", sorted(FIRING))
    def test_fixture_fires_exactly_its_code(self, code):
        result = _analyze_fixture(FIRING[code])
        assert codes(result) == [code]

    @pytest.mark.parametrize("code", sorted(NEAR_MISS))
    def test_near_miss_is_silent(self, code):
        result = _analyze_fixture(NEAR_MISS[code])
        assert not set(codes(result)) & set(COST_RULE_CODES)

    def test_tl021_absorbed_by_enclosing_mitigate(self):
        result = analyze(
            "mitigate(16, H) {\n"
            "    if h > 0 then { x := h + 1;\nx := x * 2 }\n"
            "    else { skip }\n"
            "};\nh := x\n",
            gamma={"h": "H", "x": "H"})
        assert "TL021" not in codes(result)

    def test_tl022_skips_degenerate_budget(self):
        result = analyze(
            "mitigate(0, H) { if h > 0 then { x := h } else { skip } }"
            ";\nh := x\n", gamma={"h": "H", "x": "H"})
        assert "TL011" in codes(result)
        assert "TL022" not in codes(result)

    def test_tl024_needs_secret_context(self):
        result = analyze("while l > 0 do { l := l - 1 }\n")
        assert "TL024" not in codes(result)

    def test_shipped_examples_clean_of_cost_family(self):
        for path in sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.tl"))):
            with open(path) as handle:
                source = handle.read()
            result = analyze_source(source, path=path,
                                    options=LintOptions())
            fired = set(codes(result)) & set(COST_RULE_CODES)
            assert not fired, (path, fired)


class TestCostCLI:
    FIXTURE = os.path.join(LINT_DIR, FIRING["TL022"])
    CLEAN = os.path.join(EXAMPLES_DIR, "mitigate_demo.tl")

    def test_text_report_and_exit_1(self, capsys):
        rc = main(["cost", self.FIXTURE])
        assert rc == 1
        out = capsys.readouterr().out
        assert "static cycle-cost analysis" in out
        assert "TL022" in out
        for model in REGISTRY.names():
            assert model in out

    def test_clean_program_exit_0(self, capsys):
        rc = main(["cost", self.CLEAN, "--hardware", "null"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clean: no cost-backed findings" in out

    def test_json_schema(self, capsys):
        rc = main(["cost", self.FIXTURE, "--format", "json",
                   "--hardware", "null", "--hardware", "bus"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.cost/1"
        assert payload["hardware"] == ["null", "bus"]
        (program,) = payload["programs"]
        assert set(program["hardware"]) == {"null", "bus"}
        (site,) = program["sites"]
        assert site["budget"] == 2
        assert site["intervals"]["null"] == [7, 7]
        assert [d["code"] for d in program["diagnostics"]] == ["TL022"]

    def test_sarif_output_file(self, tmp_path, capsys):
        out_path = tmp_path / "cost.sarif"
        rc = main(["cost", self.FIXTURE, "--format", "sarif",
                   "--output", str(out_path)])
        assert rc == 1
        sarif = json.loads(out_path.read_text())
        results = sarif["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["TL022"]

    def test_missing_file_exit_2(self, capsys):
        assert main(["cost", "/nonexistent.tl"]) == 2

    def test_unknown_hardware_exit_2(self, capsys):
        rc = main(["cost", self.CLEAN, "--hardware", "warpdrive"])
        assert rc == 2
        assert "unknown hardware" in capsys.readouterr().err

    def test_syntax_error_exit_2(self, tmp_path, capsys):
        path = tmp_path / "broken.tl"
        path.write_text("if h > then {\n")
        assert main(["cost", str(path)]) == 2
