"""Faithfulness (Properties 1, 3, 4) on the *real* case-study programs.

The property tests cover random programs; these cover the four shipped
applications, whose programs are the largest and most idiomatic in the
repository -- nested loops, arrays, mitigates -- and therefore the most
likely to expose a semantics bug the random family misses.
"""

import pytest

from repro.apps.login import CredentialTable, LoginSystem
from repro.apps.password import PasswordChecker
from repro.apps.rsa import RsaSystem
from repro.apps.rsa_math import encrypt_blocks, generate_keypair
from repro.apps.sbox_cipher import SboxCipher, random_key
from repro.lang import DEFAULT_LATTICE, parse
from repro.lattice import powerset
from repro.machine import Memory
from repro.hardware import (
    NoFillHardware,
    NullHardware,
    PartitionedHardware,
    run_contract_suite,
    tiny_machine,
)
from repro.semantics import check_adequacy, run_core

import random

LAT = DEFAULT_LATTICE

ENVS = [
    lambda: NullHardware(LAT),
    lambda: PartitionedHardware(LAT, tiny_machine()),
]


def _assert_adequate(program, memory):
    for factory in ENVS:
        assert check_adequacy(program, memory, factory(),
                              max_steps=2_000_000) == []


class TestAppAdequacy:
    def test_login_program(self):
        system = LoginSystem(table_size=10, mitigated=True, budget=50)
        creds = CredentialTable.generate(size=10, valid=4, seed=2)
        memory = system.memory(creds, creds.usernames[1],
                               creds.passwords[1])
        _assert_adequate(system.program, memory)

    def test_rsa_program(self):
        system = RsaSystem(key_bits=16, blocks=2,
                           mitigation_mode="language", budget=100)
        key = generate_keypair(16, seed=3)
        memory = system.memory(key, encrypt_blocks([3, 4], key))
        _assert_adequate(system.program, memory)

    def test_sbox_program(self):
        cipher = SboxCipher(length=8, mitigated=True, budget=100)
        key = random_key(random.Random(4))
        memory = cipher.memory(key, [7] * 16)
        _assert_adequate(cipher.program, memory)

    def test_password_program(self):
        checker = PasswordChecker(length=6, mitigated=True, budget=100)
        memory = checker.memory([1, 2, 3, 4, 5, 6], [1, 2, 3, 9, 9, 9])
        _assert_adequate(checker.program, memory)

    def test_core_semantics_agrees_on_app_outputs(self):
        # The untimed semantics computes the same login verdict.
        system = LoginSystem(table_size=8, mitigated=True, budget=50)
        creds = CredentialTable.generate(size=8, valid=3, seed=5)
        memory = system.memory(creds, creds.usernames[0],
                               creds.passwords[0])
        core_memory = run_core(system.program, memory.copy())
        timed = system.run(creds, creds.usernames[0], creds.passwords[0],
                           hardware="null")
        assert core_memory.read("state") == timed.memory.read("state") == 1


class TestPowersetContract:
    """The partitioned design scales to a 4-level powerset lattice (one
    partition per subset of two principals, including the incomparable
    singletons)."""

    def test_partitioned_passes(self):
        lattice = powerset(["a", "b"])
        report = run_contract_suite(
            lambda: PartitionedHardware(lattice, tiny_machine()),
            lattice, trials=8,
        )
        assert report.ok(), report.summary()

    def test_nofill_passes(self):
        lattice = powerset(["a", "b"])
        report = run_contract_suite(
            lambda: NoFillHardware(lattice, tiny_machine()),
            lattice, trials=8,
        )
        assert report.ok(), report.summary()


class TestAppProgramsParseRoundTrip:
    """The shipped app programs survive pretty-print / re-parse."""

    @pytest.mark.parametrize("build", [
        lambda: LoginSystem(table_size=6, mitigated=True).program,
        lambda: RsaSystem(key_bits=16, blocks=2).program,
        lambda: SboxCipher(length=4, mitigated=True).program,
        lambda: PasswordChecker(length=4, mitigated=True).program,
    ], ids=["login", "rsa", "sbox", "password"])
    def test_round_trip(self, build):
        from repro.lang import ast_equal, pretty

        program = build()
        again = parse(pretty(program), LAT)
        assert ast_equal(program, again)
