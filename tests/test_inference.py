"""Unit tests for timing-label inference."""

import pytest

from repro.lang import DEFAULT_LATTICE, labeled_commands, parse
from repro.lattice import chain
from repro.typesystem import (
    SecurityEnvironment,
    infer_labels,
    is_well_typed,
    typecheck,
)

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]


def gamma(**names):
    return SecurityEnvironment(LAT, {n: LAT[v] for n, v in names.items()})


class TestBasicInference:
    def test_low_context_gets_low_labels(self):
        prog = parse("l := 1")
        infer_labels(prog, gamma(l="L"))
        assert prog.read_label == L and prog.write_label == L

    def test_high_context_gets_high_labels(self):
        prog = parse("if h then { g := 1 } else { g := 2 }")
        infer_labels(prog, gamma(h="H", g="H"))
        then = prog.then_branch
        assert then.read_label == H and then.write_label == H
        # The if itself sits in a low context.
        assert prog.read_label == L and prog.write_label == L

    def test_assignment_to_high_in_low_context_stays_low(self):
        # Sec. 5.1: a low write label on an assignment to a high variable
        # permits the variable to be stored in low cache.
        prog = parse("h := l")
        infer_labels(prog, gamma(h="H", l="L"))
        assert prog.write_label == L

    def test_inferred_labels_equal(self):
        # Inference always picks lr = lw (cache-usable).
        prog = parse("if h then { g := 1 } else { skip }; l := 2")
        g = gamma(h="H", g="H", l="L")
        infer_labels(prog, g)
        for cmd in labeled_commands(prog):
            assert cmd.read_label == cmd.write_label

    def test_nested_context_accumulates(self):
        lat = chain(("L", "M", "H"))
        g = SecurityEnvironment(
            lat, {"m": lat["M"], "h": lat["H"], "x": lat["H"]}
        )
        prog = parse("if m then { if h then { x := 1 } else { skip } } "
                     "else { skip }", lat)
        infer_labels(prog, g)
        inner_if = prog.then_branch
        assert inner_if.read_label == lat["M"]
        innermost = inner_if.then_branch
        assert innermost.read_label == lat["H"]

    def test_array_index_label_raises_write_label(self):
        prog = parse("x := a[h]")
        infer_labels(prog, gamma(x="H", a="L", h="H"))
        assert prog.write_label == H

    def test_array_store_index(self):
        prog = parse("a[h] := 1")
        infer_labels(prog, gamma(a="H", h="H"))
        assert prog.write_label == H

    def test_mitigate_body_keeps_outer_pc(self):
        prog = parse("mitigate(1, H) { x := 1 }")
        infer_labels(prog, gamma(x="L"))
        assert prog.body.write_label == L

    def test_while_body_raised_by_guard(self):
        prog = parse("while h > 0 do { h := h - 1 }")
        infer_labels(prog, gamma(h="H"))
        assert prog.body.write_label == H
        assert prog.write_label == L


class TestHandAnnotationsPreserved:
    def test_explicit_labels_untouched(self):
        prog = parse("x := 1 [H,H]")
        infer_labels(prog, gamma(x="H"))
        assert prog.read_label == H

    def test_partial_annotation(self):
        prog = parse("x := 1 [_,H]")
        infer_labels(prog, gamma(x="H"))
        assert prog.write_label == H
        assert prog.read_label == H  # filled from the explicit write label

    def test_mixed_program(self):
        prog = parse("x := 1 [H,H]; y := 2")
        infer_labels(prog, gamma(x="H", y="H"))
        assert prog.first.read_label == H
        assert prog.second.read_label == L


class TestInferenceThenTypecheck:
    WELL_TYPED_AFTER_INFERENCE = [
        ("l := 1; h := l", {"l": "L", "h": "H"}),
        ("if h then { g := 1 } else { g := 2 }", {"h": "H", "g": "H"}),
        ("while h > 0 do { h := h - 1 }", {"h": "H"}),
        ("mitigate(1, H) { sleep(h) }; l := 1", {"h": "H", "l": "L"}),
        ("h := l; g := h + 1", {"l": "L", "h": "H", "g": "H"}),
    ]

    @pytest.mark.parametrize("src,g", WELL_TYPED_AFTER_INFERENCE)
    def test_roundtrip(self, src, g):
        env = gamma(**g)
        prog = infer_labels(parse(src), env)
        assert is_well_typed(prog, env)

    def test_inference_cannot_fix_explicit_flows(self):
        env = gamma(l="L", h="H")
        prog = infer_labels(parse("l := h"), env)
        assert not is_well_typed(prog, env)

    def test_inferred_labels_pass_cache_side_condition(self):
        env = gamma(h="H", g="H", l="L")
        prog = infer_labels(
            parse("l := 1; mitigate(1, H) {"
                  " if h then { g := 1 } else { g := 2 } }"), env
        )
        typecheck(prog, env, require_cache_labels=True)

    def test_paper_login_shape(self):
        # The Sec. 8.3 skeleton: high search must be mitigated for the
        # final public response to typecheck.
        env = gamma(t="H", uh="L", found="H", response="L")
        bad = infer_labels(
            parse("if t == uh then { found := 1 } else { skip };"
                  "response := 1"),
            env,
        )
        assert not is_well_typed(bad, env)
        good = infer_labels(
            parse("mitigate(1, H) {"
                  " if t == uh then { found := 1 } else { skip } };"
                  "response := 1"),
            env,
        )
        assert is_well_typed(good, env)
