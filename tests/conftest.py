"""Shared test configuration.

Hypothesis runs derandomized so the suite is reproducible run-to-run (the
property tests' example corpora are fixed); health checks that object to
the simulator's per-example cost are relaxed, and the per-example deadline
is disabled explicitly -- simulated runs routinely exceed the 200 ms
default on slower CI machines, and a deadline flake would be
indistinguishable from a real regression.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
