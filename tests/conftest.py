"""Shared test configuration.

Hypothesis runs derandomized so the suite is reproducible run-to-run (the
property tests' example corpora are fixed); health checks that object to
the simulator's per-example cost are relaxed.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
