"""Unit tests for the adversary toolkit."""

import pytest

from repro.lang import DEFAULT_LATTICE
from repro.machine import AccessTrace
from repro.hardware import (
    NoFillHardware,
    PartitionedHardware,
    StandardHardware,
    StepKind,
    tiny_machine,
)
from repro.attacks import (
    advantage,
    chance_accuracy,
    distinguishable,
    eviction_set,
    fit_weight_model,
    median,
    median_of_n,
    partition_by,
    pearson_correlation,
    probe,
    probe_distinguishes,
    threshold_classifier,
    username_probe,
    welch_t,
)

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]
DATA = 0x1000_0000


class TestDistinguishers:
    def test_distinguishable(self):
        assert distinguishable([1, 2], [1, 3])
        assert not distinguishable([1, 2], [2, 1])

    def test_threshold_perfect_separation(self):
        r = threshold_classifier([10, 11, 12], [50, 51])
        assert r.accuracy == 1.0
        assert 12 < r.threshold < 50

    def test_threshold_orientation(self):
        r = threshold_classifier([50, 51], [10, 11], "slow", "fast")
        assert r.accuracy == 1.0
        assert r.low_class == "fast"

    def test_threshold_overlapping(self):
        r = threshold_classifier([1, 2, 3, 4], [3, 4, 5, 6])
        assert 0.5 <= r.accuracy < 1.0

    def test_threshold_identical_distributions(self):
        r = threshold_classifier([5, 5, 5], [5, 5, 5])
        assert r.accuracy == 0.5
        assert not r.separates()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            threshold_classifier([], [1])

    def test_chance_accuracy(self):
        assert chance_accuracy([1] * 9, [2]) == 0.9

    def test_partition_by(self):
        groups = partition_by([1, 2, 3], ["a", "b", "a"])
        assert groups == {"a": [1, 3], "b": [2]}
        with pytest.raises(ValueError):
            partition_by([1], ["a", "b"])

    def test_username_probe(self):
        times = [100, 100, 40, 41]
        validity = [True, True, False, False]
        r = username_probe(times, validity)
        assert r.accuracy == 1.0
        with pytest.raises(ValueError):
            username_probe([1, 2], [True, True])

    def test_pearson(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)
        assert pearson_correlation([1, 2, 3], [5, 5, 5]) == 0.0
        with pytest.raises(ValueError):
            pearson_correlation([1], [2])


class TestMedianSampling:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2.0

    def test_median_even(self):
        assert median([4, 1, 3, 2]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_median_of_n_rejects_outlier(self):
        samples = iter([10, 10, 900, 10, 10])
        assert median_of_n(lambda: next(samples), 5) == 10.0

    def test_median_of_n_needs_positive_n(self):
        with pytest.raises(ValueError):
            median_of_n(lambda: 1, 0)


class TestWelchAdvantage:
    def test_separated_samples_significant(self):
        fast = [100, 101, 99, 100, 102, 98, 100, 101]
        slow = [200, 201, 199, 200, 202, 198, 200, 199]
        result = advantage(fast, slow)
        assert result.advantage == pytest.approx(0.5)
        assert result.accuracy == 1.0
        assert result.p_value < 1e-6
        assert result.significant()

    def test_identical_constant_samples_not_significant(self):
        result = advantage([5, 5, 5, 5], [5, 5, 5, 5])
        assert result.advantage == 0.0
        assert result.t_stat == 0.0
        assert result.p_value == 1.0
        assert not result.significant()

    def test_distinct_constant_samples_deterministic(self):
        result = advantage([5, 5, 5], [9, 9, 9])
        assert result.t_stat == float("-inf")
        assert result.p_value == 0.0
        assert result.significant()

    def test_same_distribution_not_significant(self):
        import random

        rng = random.Random(2012)
        a = [rng.gauss(100, 10) for _ in range(40)]
        b = [rng.gauss(100, 10) for _ in range(40)]
        result = advantage(a, b)
        assert not result.significant(alpha=0.01)
        assert result.advantage < 0.3

    def test_welch_t_matches_known_value(self):
        # Classic Welch example: unequal sizes and variances.
        a = [27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6,
             23.1, 19.6, 19.0, 21.7, 21.4]
        b = [27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2,
             21.9, 22.1, 22.9, 30.5, 25.2, 27.3, 14.1, 15.9, 19.8, 14.0]
        t_stat, dof = welch_t(a, b)
        assert t_stat == pytest.approx(-1.2755, abs=0.001)
        assert dof == pytest.approx(32.63, abs=0.05)

    def test_welch_needs_two_per_class(self):
        with pytest.raises(ValueError):
            welch_t([1], [2, 3])

    def test_p_value_matches_reference(self):
        # t=2.0, dof=10 -> two-sided p = 0.07339 (reference tables).
        fast = [100, 101, 99, 100, 102, 98]
        slow = [200, 201, 199, 200, 202, 198]
        result = advantage(fast, slow)
        assert 0.0 <= result.p_value <= 1.0
        from repro.attacks.distinguisher import _student_t_sf

        assert 2 * _student_t_sf(2.0, 10.0) == pytest.approx(0.07339,
                                                             abs=1e-4)
        assert 2 * _student_t_sf(2.228, 10.0) == pytest.approx(0.05,
                                                               abs=1e-3)

    def test_as_dict_round_trips(self):
        result = advantage([1, 2, 3, 4], [10, 11, 12, 13])
        d = result.as_dict()
        assert d["samples_a"] == 4 and d["samples_b"] == 4
        assert d["advantage"] == result.advantage


class TestWeightModel:
    def test_fit_recovers_line(self):
        weights = [4, 8, 12, 16]
        times = [100 + 7 * w for w in weights]
        model = fit_weight_model(weights, times)
        assert model.slope == pytest.approx(7.0)
        assert model.intercept == pytest.approx(100.0)
        assert model.predict_weight(100 + 7 * 10) == pytest.approx(10.0)

    def test_flat_line_predicts_nan(self):
        model = fit_weight_model([4, 8], [50, 50])
        assert model.predict_weight(50) != model.predict_weight(50) or \
            model.slope == 0.0

    def test_constant_weights(self):
        model = fit_weight_model([5, 5, 5], [1, 2, 3])
        assert model.slope == 0.0


class TestCacheProbe:
    def _victim(self, env, secret):
        # Victim touches DATA when the secret is set; labels [H,H].
        if secret:
            env.step(StepKind.ASSIGN,
                     AccessTrace(instruction=0x400000, reads=(DATA,)),
                     H, H)
        return env

    def test_probe_reads_clone(self):
        env = StandardHardware(LAT, tiny_machine())
        before = env.full_state()
        probe(env, [DATA, DATA + 64])
        assert env.full_state() == before

    def test_probe_distinguishes_on_standard(self):
        e0 = self._victim(StandardHardware(LAT, tiny_machine()), 0)
        e1 = self._victim(StandardHardware(LAT, tiny_machine()), 1)
        assert probe_distinguishes(e0, e1, [DATA])

    @pytest.mark.parametrize("hardware_cls", [NoFillHardware,
                                              PartitionedHardware])
    def test_probe_blind_on_secure_designs(self, hardware_cls):
        e0 = self._victim(hardware_cls(LAT, tiny_machine()), 0)
        e1 = self._victim(hardware_cls(LAT, tiny_machine()), 1)
        assert not probe_distinguishes(e0, e1, [DATA, DATA + 64])

    def test_probe_hit_classification(self):
        env = StandardHardware(LAT, tiny_machine())
        env.step(StepKind.ASSIGN,
                 AccessTrace(instruction=0x400000, reads=(DATA,)), L, L)
        result = probe(env, [DATA, DATA + 4096])
        hits = result.hits(hit_threshold=min(result.costs))
        assert hits[0] and not hits[1]

    def test_eviction_set_geometry(self):
        addresses = eviction_set(0x1000, sets=4, block_bytes=16, ways=2)
        assert len(addresses) == 3
        # All in the same set: identical (block mod sets).
        sets_hit = {(a // 16) % 4 for a in addresses}
        assert len(sets_hit) == 1

    def test_eviction_set_evicts(self):
        from repro.hardware import Cache, CacheParams

        cache = Cache(CacheParams(4, 2, 16, 1))
        victim = 0x1000
        cache.touch(victim)
        for addr in eviction_set(victim, sets=4, block_bytes=16, ways=2):
            cache.touch(addr)
        assert not cache.lookup(victim)


class TestAttackTelemetry:
    """Every attack entry point threads an optional recorder: per-guess
    timing samples plus end-of-attack distinguisher statistics."""

    def test_probe_emits_per_address_samples(self):
        from repro.telemetry import RecordingTraceRecorder

        env = StandardHardware(LAT, tiny_machine())
        recorder = RecordingTraceRecorder()
        probe(env, [DATA, DATA + 64, DATA + 128], recorder=recorder)
        attacks = recorder.registry.attack_summary()
        assert attacks["cache_probe"]["samples"] == 3

    def test_probe_without_recorder_unchanged(self):
        from repro.telemetry import RecordingTraceRecorder

        env = StandardHardware(LAT, tiny_machine())
        bare = probe(env, [DATA, DATA + 64])
        recorded = probe(env, [DATA, DATA + 64],
                         recorder=RecordingTraceRecorder())
        assert bare.costs == recorded.costs

    def test_prefix_attack_records_guesses_and_stats(self):
        from repro.apps.password import PasswordChecker
        from repro.attacks.prefix_attack import recover_password
        from repro.telemetry import RecordingTraceRecorder

        checker = PasswordChecker(length=2, mitigated=False)
        recorder = RecordingTraceRecorder()
        result = recover_password(checker, [3, 1], alphabet=4,
                                  hardware="null", recorder=recorder)
        assert result.succeeded
        attacks = recorder.registry.attack_summary()
        prefix = attacks["prefix"]
        assert prefix["samples"] == result.guesses_used
        assert prefix["stats"]["guesses"] == result.guesses_used
        assert prefix["stats"]["succeeded"] == 1
        # Victim executions were recorded too, one run per guess.
        assert recorder.registry.counter("runs") == result.guesses_used

    def test_rsa_attack_records_model_stats(self):
        from repro.apps.rsa import RsaSystem
        from repro.apps.rsa_math import generate_keypair
        from repro.attacks.rsa_attack import hamming_weight_attack
        from repro.telemetry import RecordingTraceRecorder

        system = RsaSystem(key_bits=16, blocks=1, mitigation_mode="none")
        keys = [generate_keypair(16, seed=s) for s in range(4)]
        target = generate_keypair(16, seed=9)
        recorder = RecordingTraceRecorder()
        hamming_weight_attack(system, keys, target, [9],
                              hardware="null", recorder=recorder)
        attacks = recorder.registry.attack_summary()
        rsa = attacks["rsa"]
        assert rsa["samples"] == len(keys) + 1
        assert "slope" in rsa["stats"]
        assert rsa["stats"]["true_weight"] == target.hamming_weight()

    def test_sbox_attack_records_probe_sweep(self):
        import random

        from repro.apps.sbox_cipher import SboxCipher, random_key
        from repro.attacks.sbox_attack import recover_key_byte
        from repro.telemetry import RecordingTraceRecorder

        cipher = SboxCipher(length=1, mitigated=True)
        key = random_key(random.Random(2012))
        recorder = RecordingTraceRecorder()
        result = recover_key_byte(cipher, key, [0x00, 0xFF],
                                  hardware="nopar", recorder=recorder)
        attacks = recorder.registry.attack_summary()
        sbox = attacks["sbox"]
        # One sample per probed S-box block per prime-and-probe round.
        assert sbox["stats"]["probes"] == result.probes_used
        assert sbox["samples"] % result.probes_used == 0
        assert sbox["samples"] > result.probes_used
        assert sbox["stats"]["bits_learned"] == result.bits_learned()
