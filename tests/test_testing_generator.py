"""The random-program generator itself (repro.testing)."""

import random

import pytest

from repro.lang import DEFAULT_LATTICE, ast, labeled_commands
from repro.lattice import chain, diamond
from repro.semantics import run_core
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import infer_labels, typecheck

LAT = DEFAULT_LATTICE


def make_gen(seed=0, lattice=None, **cfg):
    lattice = lattice if lattice is not None else LAT
    gamma = standard_gamma(lattice)
    return ProgramGenerator(
        gamma, random.Random(seed), GeneratorConfig(**cfg)
    ), gamma


class TestStandardGamma:
    def test_names_per_level(self):
        gamma = standard_gamma(LAT, per_level=3)
        assert sum(1 for n in gamma if gamma[n] == LAT["L"]) == 3
        assert sum(1 for n in gamma if gamma[n] == LAT["H"]) == 3

    def test_names_lowercased(self):
        gamma = standard_gamma(chain(("L", "M", "H")))
        assert "m0" in gamma and "h1" in gamma

    def test_powerset_names_sanitized(self):
        from repro.lattice import powerset

        gamma = standard_gamma(powerset(["a", "b"]))
        assert all(name.isidentifier() for name in gamma)


class TestGeneratedPrograms:
    def test_all_terminate(self):
        gen, gamma = make_gen(1)
        for seed in range(50):
            gen, gamma = make_gen(seed)
            prog = gen.program()
            run_core(prog, gen.memory(), max_steps=500_000)

    def test_high_typability_rate(self):
        ok = 0
        for seed in range(100):
            gen, gamma = make_gen(seed)
            prog = gen.program()
            infer_labels(prog, gamma)
            try:
                typecheck(prog, gamma)
                ok += 1
            except Exception:
                pass
        assert ok >= 95

    def test_command_kind_coverage(self):
        kinds = set()
        for seed in range(60):
            gen, _ = make_gen(seed)
            for cmd in gen.program().walk():
                kinds.add(type(cmd).__name__)
        assert {"Assign", "If", "While", "Mitigate", "Skip",
                "Sleep"} <= kinds

    def test_mitigate_can_be_disabled(self):
        for seed in range(20):
            gen, _ = make_gen(seed, allow_mitigate=False)
            assert not any(
                isinstance(c, ast.Mitigate) for c in gen.program().walk()
            )

    def test_sleep_can_be_disabled(self):
        for seed in range(20):
            gen, _ = make_gen(seed, allow_sleep=False)
            assert not any(
                isinstance(c, ast.Sleep) for c in gen.program().walk()
            )

    def test_depth_bound_respected(self):
        def depth(cmd, d=0):
            return max(
                [d] + [depth(s, d + (0 if isinstance(cmd, ast.Seq) else 1))
                       for s in cmd.subcommands()]
            )

        for seed in range(20):
            gen, _ = make_gen(seed, max_depth=2)
            assert depth(gen.program()) <= 3  # depth budget + leaf level

    def test_loop_counters_not_reassigned_in_body(self):
        # The termination guarantee: only the canonical decrement writes
        # the counter inside its own loop.
        for seed in range(40):
            gen, _ = make_gen(seed)
            prog = gen.program()
            for cmd in prog.walk():
                if isinstance(cmd, ast.While):
                    counter = cmd.cond.left.name
                    writes = [
                        c
                        for c in cmd.body.walk()
                        if isinstance(c, ast.Assign) and c.target == counter
                    ]
                    # Exactly one write: the trailing decrement (nested
                    # loops may reuse a *different* counter).
                    assert len(writes) == 1

    def test_deterministic_by_seed(self):
        g1, _ = make_gen(7)
        g2, _ = make_gen(7)
        from repro.lang import ast_equal

        assert ast_equal(g1.program(), g2.program())


class TestMemories:
    def test_memory_covers_gamma(self):
        gen, gamma = make_gen(3)
        memory = gen.memory()
        for name in gamma:
            memory.read(name)

    def test_memory_pair_low_equal(self):
        lattice = chain(("L", "M", "H"))
        gen, gamma = make_gen(5, lattice=lattice)
        for level in lattice.levels():
            m1, m2 = gen.memory_pair(level)
            for name in gamma:
                if gamma[name].flows_to(level):
                    assert m1.read(name) == m2.read(name)

    def test_memory_pair_high_varies_eventually(self):
        gen, gamma = make_gen(11)
        diffs = 0
        for _ in range(10):
            m1, m2 = gen.memory_pair(LAT["L"])
            high = [n for n in gamma if gamma[n] == LAT["H"]]
            if any(m1.read(n) != m2.read(n) for n in high):
                diffs += 1
        assert diffs > 0


class TestExpressionGeneration:
    def test_respects_label_cap(self):
        gen, gamma = make_gen(9)
        for _ in range(50):
            expr = gen.expr(LAT["L"])
            assert gamma.label_of_expr(expr) == LAT["L"]

    def test_uncapped_can_reach_high(self):
        gen, gamma = make_gen(13)
        labels = {
            gamma.label_of_expr(gen.expr(None)).name for _ in range(100)
        }
        assert "H" in labels


class TestDiamondLattice:
    def test_generator_works_on_diamond(self):
        lattice = diamond()
        gen, gamma = make_gen(17, lattice=lattice)
        prog = gen.program()
        infer_labels(prog, gamma)
        typecheck(prog, gamma)
        run_core(prog, gen.memory(), max_steps=500_000)
