"""Unit tests for security lattices (repro.lattice)."""

import pytest

from repro.lattice import Lattice, LatticeError, chain, diamond, powerset, two_point


class TestTwoPoint:
    def test_levels(self):
        lat = two_point()
        assert {l.name for l in lat} == {"L", "H"}

    def test_order(self):
        lat = two_point()
        assert lat["L"].flows_to(lat["H"])
        assert not lat["H"].flows_to(lat["L"])

    def test_reflexive(self):
        lat = two_point()
        for level in lat:
            assert level.flows_to(level)

    def test_bottom_top(self):
        lat = two_point()
        assert lat.bottom == lat["L"]
        assert lat.top == lat["H"]

    def test_join_meet(self):
        lat = two_point()
        assert lat.join(lat["L"], lat["H"]) == lat["H"]
        assert lat.meet(lat["L"], lat["H"]) == lat["L"]

    def test_operator_sugar(self):
        lat = two_point()
        assert (lat["L"] | lat["H"]) == lat["H"]
        assert (lat["L"] & lat["H"]) == lat["L"]
        assert lat["L"] <= lat["H"]
        assert lat["L"] < lat["H"]
        assert lat["H"] >= lat["L"]
        assert lat["H"] > lat["L"]


class TestChain:
    def test_three_level_order(self):
        lat = chain(("L", "M", "H"))
        assert lat["L"] < lat["M"] < lat["H"]
        assert lat["L"] < lat["H"]

    def test_is_chain(self):
        assert chain(("a", "b", "c", "d")).is_chain()
        assert not diamond().is_chain()

    def test_single_element(self):
        lat = chain(("only",))
        assert lat.bottom == lat.top == lat["only"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            chain(())


class TestDiamond:
    def test_incomparable_middles(self):
        lat = diamond()
        m1, m2 = lat["M1"], lat["M2"]
        assert not m1.flows_to(m2)
        assert not m2.flows_to(m1)

    def test_join_of_middles_is_top(self):
        lat = diamond()
        assert lat.join(lat["M1"], lat["M2"]) == lat["H"]

    def test_meet_of_middles_is_bottom(self):
        lat = diamond()
        assert lat.meet(lat["M1"], lat["M2"]) == lat["L"]


class TestPowerset:
    def test_size(self):
        lat = powerset(["a", "b", "c"])
        assert len(lat) == 8

    def test_subset_order(self):
        lat = powerset(["a", "b"])
        assert lat["{a}"].flows_to(lat["{a,b}"])
        assert not lat["{a}"].flows_to(lat["{b}"])

    def test_join_is_union(self):
        lat = powerset(["a", "b"])
        assert lat.join(lat["{a}"], lat["{b}"]) == lat["{a,b}"]

    def test_meet_is_intersection(self):
        lat = powerset(["a", "b"])
        assert lat.meet(lat["{a}"], lat["{a,b}"]) == lat["{a}"]

    def test_bottom_is_empty_set(self):
        lat = powerset(["a", "b"])
        assert lat.bottom.name == "{}"


class TestConstruction:
    def test_cycle_rejected(self):
        with pytest.raises(LatticeError, match="cycle"):
            Lattice(("a", "b"), (("a", "b"), ("b", "a")))

    def test_non_lattice_rejected(self):
        # Two maximal elements: no join for the two bottoms' cover targets.
        with pytest.raises(LatticeError):
            Lattice(("a", "b", "c", "d"),
                    (("a", "c"), ("a", "d"), ("b", "c"), ("b", "d")))

    def test_unknown_cover_element(self):
        with pytest.raises(LatticeError, match="unknown element"):
            Lattice(("a",), (("a", "zzz"),))

    def test_empty_rejected(self):
        with pytest.raises(LatticeError):
            Lattice((), ())

    def test_duplicate_names_collapse(self):
        lat = Lattice(("a", "a", "b"), (("a", "b"),))
        assert len(lat) == 2

    def test_unknown_level_lookup(self):
        lat = two_point()
        with pytest.raises(KeyError, match="no level named"):
            lat["X"]

    def test_contains(self):
        lat = two_point()
        assert "L" in lat
        assert "X" not in lat


class TestCrossLattice:
    def test_labels_from_different_lattices_rejected(self):
        a, b = two_point(), two_point()
        with pytest.raises(LatticeError, match="different lattice"):
            a.leq(a["L"], b["H"])

    def test_equality_is_per_lattice(self):
        a, b = two_point(), two_point()
        assert a["L"] != b["L"]
        assert a["L"] == a["L"]


class TestDerivedOperators:
    def test_observable_by(self):
        lat = chain(("L", "M", "H"))
        assert lat.observable_by(lat["M"]) == frozenset({lat["L"], lat["M"]})

    def test_exclude_observable(self):
        # Paper example (Sec. 6.2): L g M g H, adversary M, L = {M, H}.
        lat = chain(("L", "M", "H"))
        result = lat.exclude_observable([lat["M"], lat["H"]], lat["M"])
        assert result == frozenset({lat["H"]})

    def test_upward_closure_paper_example(self):
        # Sec. 6.3: L = {M}, adversary L: closure is {M, H}.
        lat = chain(("L", "M", "H"))
        excluded = lat.exclude_observable([lat["M"]], lat["L"])
        assert lat.upward_closure(excluded) == frozenset(
            {lat["M"], lat["H"]}
        )

    def test_upward_closure_empty(self):
        lat = two_point()
        assert lat.upward_closure([]) == frozenset()

    def test_downward_closure(self):
        lat = diamond()
        down = lat.downward_closure([lat["M1"]])
        assert down == frozenset({lat["L"], lat["M1"]})

    def test_join_all_empty_is_bottom(self):
        lat = two_point()
        assert lat.join_all([]) == lat.bottom

    def test_meet_all_empty_is_top(self):
        lat = two_point()
        assert lat.meet_all([]) == lat.top


class TestProduct:
    def test_product_size(self):
        lat = two_point().product(two_point())
        assert len(lat) == 4

    def test_product_order(self):
        lat = two_point().product(two_point())
        assert lat["L*L"].flows_to(lat["H*H"])
        assert not lat["L*H"].flows_to(lat["H*L"])

    def test_product_is_lattice(self):
        lat = two_point().product(chain(("L", "M", "H")))
        assert lat.join(lat["H*L"], lat["L*M"]) == lat["H*M"]
