"""Unit tests for the Fig. 4 security type system."""

import pytest

from repro.lang import DEFAULT_LATTICE, parse
from repro.lattice import chain
from repro.typesystem import (
    MissingLabel,
    SecurityEnvironment,
    TypingError,
    UnboundVariable,
    is_well_typed,
    typecheck,
)

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]


def gamma(**names):
    return SecurityEnvironment(LAT, {n: LAT[v] for n, v in names.items()})


def gamma3(**names):
    lat = chain(("L", "M", "H"))
    return SecurityEnvironment(lat, {n: lat[v] for n, v in names.items()}), lat


class TestExpressionTyping:
    def test_literal_is_bottom(self):
        g = gamma()
        assert g.label_of_expr(parse("x := 1").expr) == L

    def test_join_of_variables(self):
        g = gamma(l="L", h="H")
        assert g.label_of_expr(parse("x := l + h").expr) == H

    def test_array_read_joins_index(self):
        g = gamma(a="L", h="H")
        expr = parse("x := a[h]").expr
        assert g.label_of_expr(expr) == H

    def test_unbound_variable(self):
        g = gamma()
        with pytest.raises(UnboundVariable):
            g.label_of_expr(parse("x := q").expr)


class TestAssignRule:
    def test_low_to_low(self):
        assert is_well_typed(parse("l := 1 [L,L]"), gamma(l="L"))

    def test_low_to_high(self):
        assert is_well_typed(parse("h := l [L,L]"), gamma(l="L", h="H"))

    def test_explicit_flow_rejected(self):
        assert not is_well_typed(parse("l := h [L,L]"), gamma(l="L", h="H"))

    def test_read_label_must_flow_to_target(self):
        # T-ASGN: lr <= Gamma(x); a high read label taints the update time.
        assert not is_well_typed(parse("l := 1 [H,H]"), gamma(l="L"))
        assert is_well_typed(parse("h := 1 [H,H]"), gamma(h="H"))

    def test_end_label_is_target_label(self):
        g = gamma(l="L", h="H")
        info = typecheck(parse("h := 1 [L,H]"), g)
        assert info.end_label == H

    def test_timing_taint_blocks_public_update(self):
        # After assigning high, the timing end-label is H; a later public
        # assignment must be rejected (its update time leaks).
        src = "h := 1 [L,H]; l := 2 [L,L]"
        assert not is_well_typed(parse(src), gamma(l="L", h="H"))

    def test_missing_labels(self):
        with pytest.raises(MissingLabel):
            typecheck(parse("l := 1"), gamma(l="L"))


class TestImplicitFlows:
    def test_high_guard_low_assignment_rejected(self):
        src = "if h then { l := 1 [L,H] } else { l := 2 [L,H] } [L,H]"
        assert not is_well_typed(parse(src), gamma(l="L", h="H"))

    def test_high_guard_high_assignment_ok(self):
        src = "if h then { g := 1 [L,H] } else { g := 2 [L,H] } [L,H]"
        assert is_well_typed(parse(src), gamma(g="H", h="H"))

    def test_pc_must_flow_to_write_label(self):
        # Sec. 2.2's hardware implicit flow: high context, low write label.
        src = "if h then { g := 1 [L,L] } else { skip [L,L] } [L,H]"
        with pytest.raises(TypingError, match="pc"):
            typecheck(parse(src), gamma(g="H", h="H"))

    def test_paper_cache_example_needs_high_write_labels(self):
        # The annotated example of Sec. 2.2: insecure with [L,L] bodies...
        bad = ("if h1 then { h2 := l1 [L,L] } else { h2 := l2 [L,L] } [L,L];"
               "l3 := l1 [L,L]")
        g = gamma(h1="H", h2="H", l1="L", l2="L", l3="L")
        assert not is_well_typed(parse(bad), g)
        # ...and the write labels alone don't save the final public
        # assignment, whose timing still depends on h1 (end label is H).
        better = ("if h1 then { h2 := l1 [L,H] } else { h2 := l2 [L,H] } [L,H];"
                  "l3 := l1 [L,L]")
        assert not is_well_typed(parse(better), g)
        # Dropping the trailing public assignment makes it safe.
        safe = "if h1 then { h2 := l1 [L,H] } else { h2 := l2 [L,H] } [L,H]"
        assert is_well_typed(parse(safe), g)


class TestSkipSleepRules:
    def test_skip_raises_end_by_read_label(self):
        info = typecheck(parse("skip [H,H]"), gamma())
        assert info.end_label == H

    def test_sleep_high_duration_raises_timing(self):
        src = "sleep(h) [H,H]; l := 1 [L,L]"
        assert not is_well_typed(parse(src), gamma(h="H", l="L"))

    def test_sleep_low_duration_fine(self):
        src = "sleep(l) [L,L]; l := 1 [L,L]"
        assert is_well_typed(parse(src), gamma(l="L"))


class TestWhileRule:
    def test_low_loop(self):
        src = "while x > 0 do { x := x - 1 [L,L] } [L,L]"
        assert is_well_typed(parse(src), gamma(x="L"))

    def test_high_guard_loop_allowed(self):
        # Unlike Agat-style transformation, loops on secrets are permitted.
        src = "while h > 0 do { h := h - 1 [H,H] } [L,H]"
        assert is_well_typed(parse(src), gamma(h="H"))

    def test_high_loop_then_public_update_rejected(self):
        src = ("while h > 0 do { h := h - 1 [H,H] } [L,H];"
               "l := 1 [L,L]")
        assert not is_well_typed(parse(src), gamma(h="H", l="L"))

    def test_fixpoint_propagates_body_timing(self):
        # Guard is low but the body reads high timing: the loop's end label
        # must rise to H, so a later public assignment is rejected.
        src = ("while x > 0 do { x := x - 1 [L,L]; h := h + 1 [L,H] } [L,L];"
               "l := 1 [L,L]")
        assert not is_well_typed(parse(src), gamma(x="L", h="H", l="L"))
        # Hint check: counter updates in such a loop must be at H, since
        # T-ASGN demands the timing start-label flow to the target.
        src2 = ("while x > 0 do { h := h + 1 [L,H]; x := x - 1 [L,L] } [L,L]")
        assert not is_well_typed(parse(src2), gamma(x="L", h="H"))


class TestMitigateRule:
    def test_resets_timing_label(self):
        src = "mitigate(1, H) { sleep(h) [H,H] } [L,L]; l := 1 [L,L]"
        assert is_well_typed(parse(src), gamma(h="H", l="L"))

    def test_level_must_bound_body(self):
        lat = chain(("L", "M", "H"))
        g = SecurityEnvironment(lat, {"h": lat["H"], "l": lat["L"]})
        src = "mitigate(1, M) { sleep(h) [H,H] } [L,L]"
        with pytest.raises(TypingError, match="mitigate level"):
            typecheck(parse(src, lat), g)

    def test_budget_label_propagates(self):
        # A high budget expression leaks through the mitigate's *own* time.
        src = "mitigate(h, H) { skip [L,L] } [L,L]; l := 1 [L,L]"
        assert not is_well_typed(parse(src), gamma(h="H", l="L"))

    def test_paper_example_sleep_h(self):
        # Sec. 2.3: mitigate (1, H) { sleep(h) }.
        src = "mitigate(1, H) { sleep(h) [H,H] } [L,L]"
        assert is_well_typed(parse(src), gamma(h="H"))

    def test_mitigate_pc_recorded(self):
        src = ("mitigate@outer (1, H) { if h then {"
               " mitigate@inner (1, H) { h := h + 1 [H,H] } [H,H]"
               " } else { skip [H,H] } [H,H] } [L,L]")
        info = typecheck(parse(src), gamma(h="H"))
        # Sec. 6.3's example: pc(M1) = L, pc(M2) = H.
        assert info.pc_of("outer") == L
        assert info.pc_of("inner") == H
        assert info.level_of("outer") == H

    def test_pc_not_raised_in_body(self):
        # T-MTG types the body under the same pc.
        src = "mitigate(1, H) { l := 1 [L,L] } [L,L]"
        assert is_well_typed(parse(src), gamma(l="L"))


class TestArrayExtension:
    def test_low_index_ok(self):
        src = "x := a[i] [L,L]"
        assert is_well_typed(parse(src), gamma(x="L", a="L", i="L"))

    def test_high_index_needs_high_write_label(self):
        # The element address leaks the index into cache state at lw.
        g = gamma(x="H", a="L", h="H")
        assert not is_well_typed(parse("x := a[h] [H,L]"), g)
        assert is_well_typed(parse("x := a[h] [H,H]"), g)

    def test_high_index_store(self):
        g = gamma(a="H", h="H")
        assert not is_well_typed(parse("a[h] := 1 [L,L]"), g)
        assert is_well_typed(parse("a[h] := 1 [H,H]"), g)

    def test_index_label_flows_into_value(self):
        # Reading a[h] yields an H value even if the array is L.
        src = "l := a[h] [H,H]"
        assert not is_well_typed(parse(src), gamma(l="L", a="L", h="H"))

    def test_guard_index_constraint(self):
        src = "if a[h] then { g := 1 [H,H] } else { skip [H,H] } [H,L]"
        g = gamma(a="L", h="H", g="H")
        assert not is_well_typed(parse(src), g)


class TestSideCondition:
    def test_require_cache_labels(self):
        prog = parse("h := 1 [L,H]")
        g = gamma(h="H")
        assert is_well_typed(prog, g)
        with pytest.raises(TypingError, match="lr = lw"):
            typecheck(prog, g, require_cache_labels=True)


class TestMultilevel:
    def test_three_level_flows(self):
        g, lat = gamma3(l="L", m="M", h="H")
        assert is_well_typed(parse("m := l [L,L]", lat), g)
        assert is_well_typed(parse("h := m [L,L]", lat), g)
        assert not is_well_typed(parse("m := h [L,L]", lat), g)

    def test_timing_taint_partial_order(self):
        g, lat = gamma3(l="L", m="M", h="H")
        # M-tainted timing can flow into H but not back into L.
        src_ok = "m := m + 1 [M,M]; h := 1 [M,H]"
        assert is_well_typed(parse(src_ok, lat), g)
        src_bad = "m := m + 1 [M,M]; l := 1 [L,L]"
        assert not is_well_typed(parse(src_bad, lat), g)

    def test_node_contexts_recorded(self):
        g, lat = gamma3(l="L", m="M", h="H")
        prog = parse("m := l [L,M]", lat)
        info = typecheck(prog, g)
        ctx = info.node_contexts[prog.node_id]
        assert ctx.pc == lat["L"]
        assert ctx.end == lat["M"]


class TestErrorQuality:
    def test_mentions_rule(self):
        with pytest.raises(TypingError) as exc:
            typecheck(parse("l := h [L,L]"), gamma(l="L", h="H"))
        assert "T-ASGN" in str(exc.value)

    def test_mentions_mitigate_hint(self):
        src = "sleep(h) [H,H]; l := 1 [L,L]"
        with pytest.raises(TypingError) as exc:
            typecheck(parse(src), gamma(h="H", l="L"))
        assert "mitigate" in str(exc.value)

    def test_mentions_source_position(self):
        # Parsed programs carry real spans, so the error points at line:col.
        with pytest.raises(TypingError) as exc:
            typecheck(parse("skip [L,L];\nl := h [L,L]"), gamma(l="L", h="H"))
        assert "line 2, col 1" in str(exc.value)

    def test_mentions_node_for_built_asts(self):
        # Programmatically built commands have only synthetic spans; the
        # error falls back to the node id.
        from repro.lang import B

        b = B(LAT)
        prog = b.assign("l", b.v("h"), L, L)
        with pytest.raises(TypingError) as exc:
            typecheck(prog, gamma(l="L", h="H"))
        assert "node" in str(exc.value)
