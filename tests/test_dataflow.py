"""The dataflow layer: CFG, worklist solver, TDG, explanations, audit."""

import os

from repro.analysis.cfg import (
    EdgeKind,
    build_cfg,
    cfg_to_dot,
    reachable_commands,
)
from repro.analysis.dataflow import (
    ConstantPropagation,
    LiveVariables,
    ReachingDefinitions,
    eval_const,
    solve,
)
from repro.analysis.engine import LintOptions, analyze_source
from repro.analysis.flows import (
    FlowExplainer,
    build_tdg,
    duration_vars,
    tdg_to_dot,
)
from repro.lang import ast, parse
from repro.lang.parser import DEFAULT_LATTICE
from repro.typesystem import SecurityEnvironment

LINT_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "lint")

LAT = DEFAULT_LATTICE


def gamma(**bindings):
    return SecurityEnvironment(
        LAT, {name: LAT[level] for name, level in bindings.items()}
    )


def node_of(program, predicate):
    for cmd in program.walk():
        if isinstance(cmd, ast.LabeledCommand) and predicate(cmd):
            return cmd
    raise AssertionError("no command matches")


def assign_to(program, name):
    return node_of(
        program,
        lambda c: isinstance(c, ast.Assign) and c.target == name,
    )


class TestCFG:
    def test_straight_line_is_one_block(self):
        program = parse("x := 1;\ny := 2;\nskip\n")
        cfg = build_cfg(program)
        body_blocks = {
            cfg.block_of[c.node_id]
            for c in program.walk()
            if isinstance(c, ast.LabeledCommand)
        }
        assert len(body_blocks) == 1

    def test_entry_and_exit_are_empty_sentinels(self):
        cfg = build_cfg(parse("if h > 0 then { skip } else { skip }\n"))
        assert not cfg.blocks[cfg.entry].commands
        assert not cfg.blocks[cfg.exit].commands

    def test_if_edges(self):
        program = parse("if h > 0 then { x := 1 } else { y := 2 }\n")
        cfg = build_cfg(program)
        guard = node_of(program, lambda c: isinstance(c, ast.If))
        out = cfg.successors(cfg.block_of[guard.node_id])
        assert {e.kind for e in out} == {EdgeKind.TRUE, EdgeKind.FALSE}
        # Both arms rejoin at a single block.
        then_blk = cfg.block_of[assign_to(program, "x").node_id]
        else_blk = cfg.block_of[assign_to(program, "y").node_id]
        joins = ({e.dst for e in cfg.successors(then_blk)}
                 & {e.dst for e in cfg.successors(else_blk)})
        assert len(joins) == 1

    def test_while_has_back_edge(self):
        program = parse("while x > 0 do { x := x - 1 }\n")
        cfg = build_cfg(program)
        guard_blk = cfg.block_of[
            node_of(program, lambda c: isinstance(c, ast.While)).node_id
        ]
        kinds = {e.kind for e in cfg.predecessors(guard_blk)}
        assert EdgeKind.BACK in kinds

    def test_mitigate_enter_exit_edges(self):
        program = parse("mitigate(1, H) { sleep(h) }\n")
        cfg = build_cfg(program)
        kinds = {e.kind for e in cfg.edges}
        assert EdgeKind.ENTER in kinds
        assert EdgeKind.EXIT in kinds

    def test_every_command_is_placed(self):
        program = parse(
            "x := 1;\n"
            "if x > 0 then { while x > 0 do { x := x - 1 } }\n"
            "else { mitigate(1, H) { sleep(h) } };\n"
            "y := x\n"
        )
        cfg = build_cfg(program)
        for cmd in program.walk():
            if isinstance(cmd, ast.LabeledCommand):
                assert cmd.node_id in cfg.block_of

    def test_block_spans_cover_source(self):
        program = parse("x := 1;\ny := 2\n")
        cfg = build_cfg(program)
        blk = cfg.blocks[cfg.block_of[assign_to(program, "x").node_id]]
        assert blk.span.line == 1
        assert blk.span.end_line == 2

    def test_dot_renders_blocks_and_edge_kinds(self):
        program = parse("while x > 0 do { x := x - 1 }\n")
        dot = cfg_to_dot(build_cfg(program))
        assert dot.startswith("digraph")
        assert "ENTRY" in dot and "EXIT" in dot
        assert "while x > 0" in dot
        assert "back" in dot


class TestSolver:
    def test_reaching_definitions_join_at_if(self):
        program = parse(
            "x := 1;\n"
            "if c > 0 then { x := 2 } else { skip };\n"
            "y := x\n"
        )
        cfg = build_cfg(program)
        sol = solve(cfg, ReachingDefinitions())
        use = assign_to(program, "y")
        defs = sol.problem.of(sol.before(use.node_id), "x")
        first = assign_to(program, "x")
        assert len(defs) == 2  # both the initial and the then-side def
        assert first.node_id in defs

    def test_reaching_definitions_kill_in_straight_line(self):
        program = parse("x := 1;\nx := 2;\ny := x\n")
        cfg = build_cfg(program)
        sol = solve(cfg, ReachingDefinitions())
        use = assign_to(program, "y")
        defs = sol.problem.of(sol.before(use.node_id), "x")
        assert len(defs) == 1

    def test_array_assign_is_weak_update(self):
        program = parse("a[0] := 1;\na[1] := 2;\nx := a[0]\n")
        cfg = build_cfg(program)
        sol = solve(cfg, ReachingDefinitions())
        use = assign_to(program, "x")
        assert len(sol.problem.of(sol.before(use.node_id), "a")) == 2

    def test_live_variables_backward(self):
        program = parse("x := 1;\ny := 2;\nz := x\n")
        cfg = build_cfg(program)
        sol = solve(cfg, LiveVariables())
        first = assign_to(program, "x")
        live_after_first = sol.before(first.node_id)  # flow order: after
        assert "x" in live_after_first  # read by z := x below
        # The definition kills its own liveness going further back.
        assert "x" not in sol.problem.transfer(first, live_after_first)
        # y is dead everywhere: assigned, never read.
        second = assign_to(program, "y")
        assert "y" not in sol.before(second.node_id)

    def test_constants_propagate_through_assignments(self):
        program = parse("x := 2;\ny := x + 3;\nz := y\n")
        cfg = build_cfg(program)
        sol = solve(cfg, ConstantPropagation())
        use = assign_to(program, "z")
        assert dict(sol.before(use.node_id))["y"] == 5

    def test_constants_meet_at_join(self):
        program = parse(
            "x := 1;\n"
            "if c > 0 then { x := 2; y := 7 } else { y := 7 };\n"
            "z := x + y\n"
        )
        cfg = build_cfg(program)
        sol = solve(cfg, ConstantPropagation())
        env = dict(sol.before(assign_to(program, "z").node_id))
        assert "x" not in env  # 1 vs 2: not a constant
        assert env["y"] == 7  # 7 on both sides: still a constant

    def test_loop_body_invalidates_constants(self):
        program = parse(
            "x := 1;\nwhile c > 0 do { x := x + 1 };\ny := x\n"
        )
        cfg = build_cfg(program)
        sol = solve(cfg, ConstantPropagation())
        env = dict(sol.before(assign_to(program, "y").node_id))
        assert "x" not in env

    def test_eval_const_uses_interpreter_semantics(self):
        expr = parse("x := 7 / 0\n")  # trunc-div by zero yields 0
        cmd = assign_to(expr, "x")
        assert eval_const(cmd.expr) == 0


class TestReachability:
    def test_all_reachable_without_constants(self):
        program = parse("if c > 0 then { x := 1 } else { y := 2 }\n")
        cfg = build_cfg(program)
        labeled = {c.node_id for c in program.walk()
                   if isinstance(c, ast.LabeledCommand)}
        assert reachable_commands(cfg) == labeled

    def test_syntactic_constant_guard_prunes(self):
        program = parse("if 0 then { x := 1 } else { y := 2 }\n")
        cfg = build_cfg(program)
        live = reachable_commands(cfg)
        assert assign_to(program, "x").node_id not in live
        assert assign_to(program, "y").node_id in live

    def test_propagated_constant_guard_prunes(self):
        program = parse(
            "k := 0;\nif k > 0 then { x := 1 } else { y := 2 };\nz := 3\n"
        )
        cfg = build_cfg(program)
        constants = solve(cfg, ConstantPropagation())
        live = reachable_commands(cfg, constants)
        assert assign_to(program, "x").node_id not in live
        assert assign_to(program, "y").node_id in live
        assert assign_to(program, "z").node_id in live

    def test_constant_true_loop_cuts_continuation(self):
        program = parse("while 1 do { x := 1 };\ny := 2\n")
        cfg = build_cfg(program)
        constants = solve(cfg, ConstantPropagation())
        live = reachable_commands(cfg, constants)
        assert assign_to(program, "x").node_id in live
        assert assign_to(program, "y").node_id not in live


class TestTDG:
    def test_sleep_taints_everything_after(self):
        program = parse("sleep(h);\nl := 0\n")
        tdg = build_tdg(program, gamma(h="H", l="L"))
        sink = assign_to(program, "l")
        assert tdg.timing_tainted(sink.node_id)
        sources = {s.name for s in tdg.start_sources(sink.node_id)}
        assert sources == {"h"}

    def test_taint_closes_over_value_flow(self):
        program = parse("x := h + 1;\nsleep(x);\nl := 0\n")
        tdg = build_tdg(program, gamma(h="H", x="H", l="L"))
        sink = assign_to(program, "l")
        names = {s.name for s in tdg.start_sources(sink.node_id)}
        assert "h" in names  # h flows into x, x into the sleep

    def test_branch_guard_taints_inside(self):
        program = parse(
            "if h > 0 then { sleep(5) } else { skip };\nl := 0\n"
        )
        tdg = build_tdg(program, gamma(h="H", l="L"))
        sink = assign_to(program, "l")
        assert tdg.timing_tainted(sink.node_id)

    def test_mitigate_absorbs_body_taint(self):
        program = parse("mitigate(1, H) { sleep(h) };\nl := 0\n")
        tdg = build_tdg(program, gamma(h="H", l="L"))
        sink = assign_to(program, "l")
        assert not tdg.timing_tainted(sink.node_id)
        mit = node_of(program, lambda c: isinstance(c, ast.Mitigate))
        assert "h" in tdg.mitigate_body_taint[mit.mit_id]

    def test_secret_budget_escapes_mitigate(self):
        program = parse("mitigate(h, H) { skip };\nl := 0\n")
        tdg = build_tdg(program, gamma(h="H", l="L"))
        assert tdg.timing_tainted(assign_to(program, "l").node_id)

    def test_while_fixpoint_feeds_guard_back(self):
        # x becomes secret only inside the loop body; the fixpoint must
        # still see the second iteration's sleep(x) as h-tainted.
        program = parse(
            "x := 0;\n"
            "while c > 0 do { sleep(x); x := h };\n"
            "l := 0\n"
        )
        tdg = build_tdg(program, gamma(h="H", x="L", c="L", l="L"))
        sink = assign_to(program, "l")
        assert "h" in {s.name for s in tdg.start_sources(sink.node_id)}

    def test_observer_level_filters_taint(self):
        program = parse("sleep(h);\nl := 0\n")
        tdg = build_tdg(program, gamma(h="H", l="L"))
        sink = assign_to(program, "l")
        assert tdg.timing_tainted(sink.node_id, observer=LAT["L"])
        assert not tdg.timing_tainted(sink.node_id, observer=LAT["H"])

    def test_duration_vars_cover_addresses(self):
        program = parse("a[i] := h;\nx := a[j] + 1\n")
        store = node_of(program, lambda c: isinstance(c, ast.ArrayAssign))
        load = assign_to(program, "x")
        assert duration_vars(store) == frozenset({"i"})
        assert duration_vars(load) == frozenset({"j"})

    def test_dot_renders_levels_and_edges(self):
        program = parse("x := h;\nsleep(x);\nl := 0\n")
        tdg = build_tdg(program, gamma(h="H", x="H", l="L"))
        dot = tdg_to_dot(tdg)
        assert "h : H" in dot
        assert "explicit" in dot
        assert "timing" in dot


class TestExplainer:
    def analyze_explained(self, source, **gamma_spec):
        options = LintOptions(gamma=gamma_spec or {"h": "H", "l": "L"},
                              explain=True)
        return analyze_source(source, path="test.tl", options=options)

    def flow_for(self, result, code):
        for diag in result.diagnostics:
            if diag.code == code and diag.flow:
                return diag.flow
        raise AssertionError(f"no {code} diagnostic with a flow")

    def test_explicit_flow_path_walks_assignments(self):
        result = self.analyze_explained(
            "t := h;\nu := t + 1;\nl := u\n",
            h="H", t="H", u="H", l="L",
        )
        flow = self.flow_for(result, "TL001")
        assert flow[0].kind == "source"
        assert flow[-1].kind == "sink"
        assert [s.kind for s in flow[1:-1]] == ["flow", "flow"]
        assert "'h'" in flow[0].message

    def test_implicit_flow_path_has_branch_step(self):
        result = self.analyze_explained(
            "if h > 0 then { l := 1 } else { skip }\n"
        )
        flow = self.flow_for(result, "TL002")
        assert [s.kind for s in flow] == ["source", "branch", "sink"]

    def test_timing_flow_path_has_timing_step(self):
        result = self.analyze_explained("sleep(h);\nl := 0\n")
        flow = self.flow_for(result, "TL003")
        kinds = [s.kind for s in flow]
        assert kinds[0] == "source"
        assert "timing" in kinds
        assert kinds[-1] == "sink"

    def test_array_index_path(self):
        result = self.analyze_explained(
            "x := a[h] [L,L]\n", h="H", a="L", x="H"
        )
        flow = self.flow_for(result, "TL006")
        assert flow[0].kind == "source"
        assert "address" in flow[-1].message

    def test_steps_carry_real_spans(self):
        result = self.analyze_explained("sleep(h);\nl := 0\n")
        for step in self.flow_for(result, "TL003"):
            assert not step.span.is_synthetic

    def test_without_explain_no_flows_attached(self):
        options = LintOptions(gamma={"h": "H", "l": "L"})
        result = analyze_source("sleep(h);\nl := 0\n", path="t.tl",
                                options=options)
        assert all(d.flow is None for d in result.diagnostics)

    def test_explainer_returns_none_for_unshaped_rules(self):
        result = self.analyze_explained("x := 1\n", x="L")
        tl015 = [d for d in result.diagnostics if d.code == "TL015"]
        assert tl015 and tl015[0].flow is None


def fixture(name):
    with open(os.path.join(LINT_DIR, name)) as handle:
        return handle.read()


class TestNewRules:
    def analyze_fixture(self, name):
        return analyze_source(fixture(name), path=name)

    def test_tl017_dead_mitigate(self):
        result = self.analyze_fixture("tl017_dead_mitigate.tl")
        codes = {d.code for d in result.diagnostics}
        assert "TL017" in codes

    def test_tl017_silent_when_body_varies(self):
        options = LintOptions(gamma={"h": "H"})
        result = analyze_source("mitigate(1, H) { sleep(h) }\n",
                                path="t.tl", options=options)
        assert "TL017" not in {d.code for d in result.diagnostics}

    def test_tl018_constant_secret_branch(self):
        result = self.analyze_fixture("tl018_constant_secret_branch.tl")
        codes = {d.code for d in result.diagnostics}
        assert "TL018" in codes
        # The syntactic fold cannot see this one, so TL016 is silent.
        assert "TL016" not in codes

    def test_tl018_silent_on_literal_guard(self):
        options = LintOptions(gamma={"l": "L"})
        result = analyze_source(
            "if 0 then { l := 1 } else { skip }\n",
            path="t.tl", options=options)
        codes = {d.code for d in result.diagnostics}
        assert "TL018" not in codes  # public literal: TL016's territory
        assert "TL016" in codes

    def test_tl019_shadowed_mitigate(self):
        result = self.analyze_fixture("tl019_shadowed_mitigate.tl")
        codes = {d.code for d in result.diagnostics}
        assert "TL019" in codes
        assert "TL012" not in codes  # levels are incomparable downward

    def test_tl020_unreachable_mitigate(self):
        result = self.analyze_fixture("tl020_unreachable_mitigate.tl")
        codes = {d.code for d in result.diagnostics}
        assert "TL020" in codes
        assert "TL017" not in codes  # unreachable sites are TL020 only


class TestAuditPrecision:
    def test_reachable_bound_strictly_tighter(self):
        result = analyze_source(
            fixture("tl020_unreachable_mitigate.tl"),
            path="tl020_unreachable_mitigate.tl",
        )
        audit = result.audit
        assert audit is not None
        assert audit.bound_bits < audit.syntactic_bound_bits
        assert audit.relevant_count < audit.syntactic_relevant_count
        assert audit.pruned_count == 1

    def test_unreachable_site_is_marked(self):
        result = analyze_source(
            fixture("tl020_unreachable_mitigate.tl"),
            path="tl020_unreachable_mitigate.tl",
        )
        sites = result.audit.sites
        dead = [s for s in sites if not s.reachable]
        assert len(dead) == 1
        assert not dead[0].relevant
        assert "unreachable" in dead[0].reason

    def test_delta_is_reported_in_text_and_json(self):
        result = analyze_source(
            fixture("tl020_unreachable_mitigate.tl"),
            path="tl020_unreachable_mitigate.tl",
        )
        text = "\n".join(result.audit.lines())
        assert "syntactic bound" in text
        doc = result.audit.as_dict()
        assert doc["syntactic"]["pruned_count"] == 1
        assert doc["syntactic"]["bound_bits"] > doc["bound_bits"]

    def test_no_delta_when_everything_reachable(self):
        options = LintOptions(gamma={"h": "H"}, adversary="L")
        result = analyze_source("mitigate(1, H) { sleep(h) }\n",
                                path="t.tl", options=options)
        audit = result.audit
        assert audit.bound_bits == audit.syntactic_bound_bits
        assert audit.pruned_count == 0


class TestInferFlag:
    def test_directive_off_yields_missing_labels(self):
        result = analyze_source(fixture("unannotated_infer.tl"),
                                path="unannotated_infer.tl")
        assert "TL007" in {d.code for d in result.diagnostics}

    def test_forced_infer_overrides_directive(self):
        result = analyze_source(
            fixture("unannotated_infer.tl"),
            path="unannotated_infer.tl",
            options=LintOptions(infer=True),
        )
        codes = {d.code for d in result.diagnostics}
        assert "TL007" not in codes
        assert "TL003" in codes  # the real flow is still reported

    def test_forced_off_overrides_directive(self):
        source = "// infer: on\nl := 1\n"
        result = analyze_source(source, path="t.tl",
                                options=LintOptions(infer=False,
                                                    gamma={"l": "L"}))
        assert "TL007" in {d.code for d in result.diagnostics}
