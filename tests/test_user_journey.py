"""End-to-end user journeys: the workflows a downstream adopter runs.

Each test is one complete story through the public API, mirroring the
paper's intended usage: write a program, let the tools find and fix the
timing channels, calibrate, run on verified hardware, and audit the leak.
"""

import math

from repro import api, two_point
from repro.lang import DEFAULT_LATTICE, mitigates, parse, pretty
from repro.machine import Memory
from repro.hardware import (
    PartitionedHardware,
    make_hardware,
    run_contract_suite,
    tiny_machine,
)
from repro.quantitative import (
    leakage_bound,
    measure_leakage,
    secret_variants,
    verify_theorem2,
)
from repro.semantics import MitigationState
from repro.typesystem import (
    SecurityEnvironment,
    TypingError,
    auto_mitigate,
    infer_labels,
    typecheck,
)

LAT = DEFAULT_LATTICE


class TestDevelopJourney:
    """Write -> reject -> auto-fix -> calibrate -> deploy -> audit."""

    SRC = """
    // tally how many of the first n secret scores exceed the threshold
    count := 0;
    i := 0;
    while i < n do {
        if scores[i] > threshold then { count := count + 1 } else { skip };
        i := i + 1
    };
    published := n
    """
    GAMMA = {
        "scores": "H", "threshold": "H", "count": "H", "i": "H",
        "n": "L", "published": "L",
    }

    def _env(self):
        return SecurityEnvironment(
            LAT, {k: LAT[v] for k, v in self.GAMMA.items()}
        )

    def test_full_journey(self):
        gamma = self._env()

        # 1. The raw program is rejected with an actionable error.
        program = infer_labels(parse(self.SRC), gamma)
        try:
            typecheck(program, gamma)
            raise AssertionError("expected a timing-channel rejection")
        except TypingError as err:
            assert "mitigate" in str(err)

        # 2. Auto-repair inserts one mitigate; the result typechecks and
        #    survives a pretty-print/parse round trip.
        fixed, placements = auto_mitigate(program, gamma)
        assert len(placements) == 1
        reparsed = infer_labels(parse(pretty(fixed)), gamma)
        info = typecheck(reparsed, gamma)
        (mit,) = mitigates(reparsed)

        # 3. Calibrate the budget by sampling (the Sec. 8.2 rule), then
        #    pin it into the program.
        base_memory = {
            "scores": [5, 9, 1, 7, 3, 8, 2, 6], "threshold": 4,
            "count": 0, "i": 0, "n": 8, "published": 0,
        }
        samples = []
        for t in range(0, 8):
            mem = dict(base_memory, threshold=t)
            result = api.CompiledProgram(
                program=reparsed, gamma=gamma, lattice=LAT, typing=info
            ).run(mem, hardware="partitioned")
            samples.append(result.mitigations[0].duration)
        budget = max(1, int(1.1 * sum(samples) / len(samples)))
        from repro.lang import ast
        mit.budget = ast.IntLit(budget)

        # 4. Verify the deployment hardware against the contract.
        report = run_contract_suite(
            lambda: make_hardware("partitioned", LAT, tiny_machine()),
            LAT, trials=6,
        )
        assert report.ok()

        # 5. Serve requests from a long-running process; the public
        #    'published' event's timing must not vary with the secrets.
        state = MitigationState()
        compiled = api.CompiledProgram(
            program=reparsed, gamma=gamma, lattice=LAT, typing=info
        )
        times = set()
        for threshold in range(8):
            mem = dict(base_memory, threshold=threshold)
            result = compiled.run(mem, hardware="partitioned",
                                  mitigation=state)
            times.add(next(e.time for e in result.events
                           if e.name == "published"))
        assert len(times) <= 2  # at most the one warm-up doubling

        # 6. Audit: exhaustive leakage over the threshold secret is within
        #    Theorem 2 and the closed-form bound.
        base = Memory(base_memory)
        variants = secret_variants(
            base, ({"threshold": t} for t in range(10))
        )
        audit = verify_theorem2(
            reparsed, gamma, LAT, [LAT["H"]], LAT["L"], base,
            PartitionedHardware(LAT, tiny_machine()), variants,
            mitigate_pc=info.mitigate_pc,
        )
        assert audit.holds
        worst_t = 1
        for key in audit.leakage.observations:
            if key:
                worst_t = max(worst_t, key[-1][3])
        bound = leakage_bound(LAT, [LAT["H"]], LAT["L"], worst_t, 1)
        assert audit.leakage.bits <= bound


class TestOperatorJourney:
    """Evaluate candidate hardware, then choose by measured security/cost."""

    def test_hardware_selection(self):
        lattice = two_point()
        program = api.compile_program(
            "l := 1; mitigate(64, H) { sleep(h) }; l2 := 2",
            gamma={"h": "H", "l": "L", "l2": "L"}, lattice=lattice,
        )
        verdicts = {}
        costs = {}
        for name in ("nopar", "nofill", "partitioned"):
            report = run_contract_suite(
                lambda n=name: make_hardware(n, lattice, tiny_machine()),
                lattice, trials=6,
            )
            verdicts[name] = report.ok()
            costs[name] = program.run(
                {"h": 3, "l": 0, "l2": 0},
                hardware=name, params=tiny_machine(),
            ).time
        # nopar is fastest but fails the contract; of the secure designs,
        # the partitioned one is the better buy.
        assert not verdicts["nopar"]
        assert verdicts["nofill"] and verdicts["partitioned"]
        assert costs["partitioned"] <= costs["nofill"]

    def test_leakage_budgeting(self):
        # An operator sets a leakage budget and checks a service against it.
        program = api.compile_program(
            "mitigate(8, H) { sleep(h) }; l := 1",
            gamma={"h": "H", "l": "L"},
        )
        base = Memory({"h": 0, "l": 0})
        result = measure_leakage(
            program.program, program.gamma, LAT, [LAT["H"]], LAT["L"],
            base, PartitionedHardware(LAT, tiny_machine()),
            secret_variants(base, ({"h": v} for v in range(256))),
            mitigate_pc=program.typing.mitigate_pc,
        )
        # 256 secrets, budget of 4 bits: the doubling schedule keeps the
        # measured leakage far inside it.
        assert result.bits <= 4.0
        assert result.bits < math.log2(256)
