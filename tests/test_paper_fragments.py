"""Every in-text example from the paper, pinned as a test.

Each test cites the section it reproduces, so this file doubles as an index
from the paper's prose to the implementation's behaviour.
"""

import pytest

from repro import api
from repro.lang import DEFAULT_LATTICE, parse
from repro.lattice import chain
from repro.machine import Memory
from repro.hardware import NullHardware, PartitionedHardware, tiny_machine
from repro.quantitative import measure_leakage, secret_variants
from repro.semantics import execute
from repro.typesystem import (
    SecurityEnvironment,
    TypingError,
    is_well_typed,
    typecheck,
)

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]


class TestSec21DirectDependencies:
    """Sec. 2.1: 'if (h) sleep(1) else sleep(10); sleep(h)'."""

    SRC = """
    if h then { sleep(1) [H,H] } else { sleep(10) [H,H] } [H,H];
    sleep(h) [H,H]
    """

    def test_one_bit_through_control_flow_plus_value(self):
        times = {
            h: execute(parse(self.SRC), Memory({"h": h}),
                       NullHardware(LAT)).time
            for h in (0, 1, 5)
        }
        # h=0: else branch (10) + sleep(0); h=1: then (1) + sleep(1).
        base = NullHardware(LAT).costs  # branch overhead cancels in diffs
        assert times[0] - times[1] == 10 - (1 + 1)
        assert times[5] - times[1] == (1 + 5) - (1 + 1)

    def test_well_typed_in_isolation(self):
        # The fragment itself is fine -- timing goes high but nothing
        # public observes it afterwards.
        gamma = SecurityEnvironment(LAT, {"h": H})
        assert is_well_typed(parse(self.SRC), gamma)


class TestSec22AnnotatedExample:
    """Sec. 2.2: the bracketed-label example around 'if (h1)...'.

    "The example on the left is insecure because execution of lines 2 and 4
    is conditioned on the high variable h1... the write label of these
    commands must be H for this program to be secure."
    """

    def gamma(self):
        return SecurityEnvironment(
            LAT, {"h1": H, "h2": H, "l1": L, "l2": L, "l3": L}
        )

    def test_low_write_labels_in_high_context_rejected(self):
        src = ("if h1 then { h2 := l1 [L,L] } else { h2 := l2 [L,L] } [L,L];"
               "l3 := l1 [L,L]")
        with pytest.raises(TypingError, match="pc"):
            typecheck(parse(src), self.gamma())

    def test_high_write_labels_fix_the_hardware_flow(self):
        # With [L,H] bodies the hardware flow is fixed; the program is
        # still rejected, but now only at the trailing public assignment
        # (the branch *timing* is high), which is the residual direct leak.
        src = ("if h1 then { h2 := l1 [L,H] } else { h2 := l2 [L,H] } [L,H];"
               "l3 := l1 [L,L]")
        with pytest.raises(TypingError, match="l3"):
            typecheck(parse(src), self.gamma())


class TestSec23MitigateExample:
    """Sec. 2.3: mitigate (1, H) { sleep(h) } -- 'they might, for example,
    be forced by mitigate to be the powers of 2'."""

    def test_powers_of_two(self):
        cp = api.compile_program("mitigate(1, H) { sleep(h) }",
                                 gamma={"h": "H"})
        durations = {
            cp.run({"h": h}, hardware="null").mitigations[0].duration
            for h in range(0, 100)
        }
        assert durations <= {2 ** k for k in range(9)}


class TestSec36PropertyExamples:
    """Sec. 3.6's worked examples about write labels."""

    def test_sleep_with_high_write_label_protects_low_state(self):
        # 'Property 5 requires that an execution of sleep(h)[lr,H] does not
        # modify L parts of the machine environment.'
        env = PartitionedHardware(LAT, tiny_machine())
        before = env.project(L)
        execute(parse("sleep(h) [H,H]"), Memory({"h": 5}), env)
        assert env.project(L) == before

    def test_sleep_takes_exact_time_regardless_of_labels(self):
        # Property 4 example; also the [L,ew] read-label discussion.
        for labels in ("[L,L]", "[H,H]", "[L,H]"):
            r = execute(parse(f"sleep(h) {labels}"), Memory({"h": 7}),
                        PartitionedHardware(LAT, tiny_machine()))
            assert r.time == 7


class TestSec41CoarseAbstraction:
    """Sec. 4.1: 'high variables can reside in low cache without hurting
    security' -- because the environment models tags, not values."""

    def test_high_variable_in_low_cache(self):
        # h := h' in a low context with write label L: allowed by T-ASGN
        # (the write label is independent of the target's label).
        gamma = SecurityEnvironment(LAT, {"h": H, "hp": H})
        assert is_well_typed(parse("h := hp [L,L]"), gamma)

    def test_tag_only_state_cannot_leak_values(self):
        # Two runs writing different high VALUES to the same location
        # leave identical environments: the cache holds no data blocks.
        src = "h := v [L,L]"
        gamma = SecurityEnvironment(LAT, {"h": H, "v": H})
        typecheck(parse(src), gamma)
        envs = []
        for value in (1, 999):
            env = PartitionedHardware(LAT, tiny_machine())
            execute(parse(src), Memory({"h": 0, "v": value}), env)
            envs.append(env)
        assert envs[0].full_state() == envs[1].full_state()


class TestSec51RuleNotes:
    """Sec. 5.1's remarks about the rules."""

    def test_write_label_independent_of_target(self):
        # 'Notice that the write label ew is independent of the label on x.'
        gamma = SecurityEnvironment(LAT, {"h": H, "l": L})
        assert is_well_typed(parse("h := l [L,L]"), gamma)
        assert is_well_typed(parse("h := l [H,H]"), gamma)

    def test_no_timing_flows_to_write_label_constraint(self):
        # 'We do not require t <= ew': high timing, low write label is fine
        # when the target is high.
        gamma = SecurityEnvironment(LAT, {"h": H, "g": H})
        src = "h := h + 1 [H,H]; g := 1 [L,L]"
        assert is_well_typed(parse(src), gamma)


class TestSec63NestedMitigates:
    """Sec. 6.3's two-mitigate program: pc(M1)=L, pc(M2)=H; only M1 matters
    for whole-program timing."""

    SRC = """
    mitigate@m1 (1, H) {
        if high then {
            mitigate@m2 (1, H) { high := high + 1 [H,H] } [H,H]
        } else { skip [H,H] } [H,H]
    } [L,L]
    """

    def test_pc_labels(self):
        gamma = SecurityEnvironment(LAT, {"high": H})
        info = typecheck(parse(self.SRC), gamma)
        assert info.pc_of("m1") == L
        assert info.pc_of("m2") == H

    def test_inner_timing_absorbed_by_outer(self):
        gamma = SecurityEnvironment(LAT, {"high": H})
        info = typecheck(parse(self.SRC), gamma)
        runs = {}
        for high in (0, 1):
            r = execute(parse(self.SRC), Memory({"high": high}),
                        NullHardware(LAT), mitigate_pc=info.mitigate_pc)
            runs[high] = r
        # M2 occurs only when high is set; M1 always -- and M1's padded
        # duration is what bounds the leak.
        assert [m.mit_id for m in runs[0].mitigations] == ["m1"]
        assert [m.mit_id for m in runs[1].mitigations] == ["m2", "m1"]

    def test_leakage_from_M_vs_H_distinct(self):
        # Sec. 6.2: 'the leakage from {M} to L is zero even though flow
        # from {H} to L is not' for sleep(h).
        lat = chain(("L", "M", "H"))
        cp = api.compile_program(
            "mitigate(1, H) { sleep(h) }; l := 1",
            gamma={"h": "H", "m": "M", "l": "L"}, lattice=lat,
        )
        base = Memory({"h": 0, "m": 0, "l": 0})
        env = NullHardware(lat)
        from_h = measure_leakage(
            cp.program, cp.gamma, lat, [lat["H"]], lat["L"], base, env,
            secret_variants(base, ({"h": v} for v in range(8))),
            mitigate_pc=cp.typing.mitigate_pc,
        )
        from_m = measure_leakage(
            cp.program, cp.gamma, lat, [lat["M"]], lat["L"], base, env,
            secret_variants(base, ({"m": v} for v in range(8))),
            mitigate_pc=cp.typing.mitigate_pc,
        )
        assert from_h.bits > 0
        assert from_m.bits == 0.0


class TestSec83ResponseChannel:
    """Sec. 8.3: 'The final assignment to public variable response is always
    1 on purpose in order to avoid the storage channel.'"""

    def test_response_value_constant_but_timing_was_the_channel(self):
        from repro.apps.login import CredentialTable, LoginSystem

        system = LoginSystem(table_size=8, mitigated=False)
        creds = CredentialTable.generate(size=8, valid=4, seed=0)
        values = set()
        times = set()
        for i in (0, 7):
            r = system.run(creds, creds.usernames[i], creds.passwords[i],
                           hardware="nopar")
            event = next(e for e in r.events if e.name == "response")
            values.add(event.value)
            times.add(event.time)
        assert values == {1}  # storage channel closed by design
        assert len(times) == 2  # the timing channel is what remains
