"""Interpreter edge cases: timeouts, deep nesting, layout pinning, errors."""

import pytest

from repro.lang import DEFAULT_LATTICE, ast, parse
from repro.lattice import chain
from repro.machine import Layout, Memory
from repro.hardware import NullHardware, PartitionedHardware, tiny_machine
from repro.semantics import (
    EvaluationError,
    MitigationState,
    execute,
)

LAT = DEFAULT_LATTICE


def run(src, mem, env=None, **kw):
    env = env if env is not None else NullHardware(LAT)
    return execute(parse(src), Memory(mem), env, **kw)


class TestTimeouts:
    def test_max_steps_enforced(self):
        with pytest.raises(TimeoutError):
            run("while 1 do { skip [L,L] } [L,L]", {}, max_steps=50)

    def test_max_steps_counts_only_real_steps(self):
        # 5 commands, well within a budget of 10.
        r = run("skip [L,L]; skip [L,L]; skip [L,L]; skip [L,L]; skip [L,L]",
                {}, max_steps=10)
        assert r.steps == 5


class TestDeepNesting:
    def test_deeply_nested_mitigates(self):
        depth = 12
        src = ""
        for _ in range(depth):
            src += "mitigate(1, H) { "
        src += "skip [L,L]"
        src += " } [L,L]" * depth
        r = run(src, {})
        assert len(r.mitigations) == depth
        # Inner blocks complete first.
        ends = [m.end_time for m in r.mitigations]
        assert ends == sorted(ends)

    def test_deep_seq_chain(self):
        src = "; ".join(["x := x + 1 [L,L]"] * 200)
        r = run(src, {"x": 0})
        assert r.memory.read("x") == 200
        assert len(r.events) == 200

    def test_nested_loops(self):
        src = """
        total := 0 [L,L];
        i := 4 [L,L];
        while i > 0 do {
            j := 3 [L,L];
            while j > 0 do {
                total := total + 1 [L,L];
                j := j - 1 [L,L]
            } [L,L];
            i := i - 1 [L,L]
        } [L,L]
        """
        r = run(src, {"total": 0, "i": 0, "j": 0})
        assert r.memory.read("total") == 12


class TestErrors:
    def test_array_oob_in_full_semantics(self):
        with pytest.raises(EvaluationError):
            run("x := a[9] [L,L]", {"x": 0, "a": [1, 2]})

    def test_array_store_oob(self):
        with pytest.raises(EvaluationError):
            run("a[5] := 1 [L,L]", {"a": [0]})

    def test_foreign_layout_rejected(self):
        prog = parse("x := 1 [L,L]")
        other = parse("y := 2 [L,L]")
        layout = Layout.build(other, Memory({"y": 0}))
        with pytest.raises(KeyError):
            execute(prog, Memory({"x": 0}), NullHardware(LAT),
                    layout=layout)


class TestMitigationInterplay:
    def test_events_inside_mitigate_not_delayed(self):
        # Predictive mitigation delays the block's *completion*; events
        # inside occur at their natural times (the type system is what
        # keeps public events out of mitigated high regions).
        src = "mitigate(1000, H) { h := 1 [H,H] } [L,L]"
        r = run(src, {"h": 0})
        event = r.events[0]
        assert event.time < 1000
        assert r.time >= 1000

    def test_mitigation_state_policy_respected_in_runs(self):
        lat = chain(("L", "M", "H"))
        src = ("mitigate(10, H) { sleep(h) [H,H] } [L,L];"
               "mitigate(10, M) { sleep(m) [M,M] } [L,L]")
        prog = parse(src, lat)
        local = execute(prog, Memory({"h": 100, "m": 1}),
                        NullHardware(lat),
                        mitigation=MitigationState(policy="local"))
        glob = execute(prog, Memory({"h": 100, "m": 1}),
                       NullHardware(lat),
                       mitigation=MitigationState(policy="global"))
        m_local = local.mitigations[1].duration
        m_global = glob.mitigations[1].duration
        assert m_local < m_global

    def test_zero_time_body(self):
        r = run("mitigate(5, H) { sleep(0 - 1) [H,H] } [L,L]", {})
        assert r.mitigations[0].duration == 5


class TestHardwareInteraction:
    def test_repeated_runs_on_same_env_warm_up(self):
        env = PartitionedHardware(LAT, tiny_machine())
        prog = parse("x := y + 1 [L,L]")
        layout = Layout.build(prog, Memory({"x": 0, "y": 0}))
        t1 = execute(prog, Memory({"x": 0, "y": 0}), env,
                     layout=layout).time
        t2 = execute(prog, Memory({"x": 0, "y": 0}), env,
                     layout=layout).time
        assert t2 < t1  # caches stay warm across runs on one environment

    def test_shared_layout_consistent_addressing(self):
        # Two programs over the same memory shape share data addresses.
        m = Memory({"x": 0, "a": [0] * 4})
        l1 = Layout.build(parse("x := 1 [L,L]"), m)
        l2 = Layout.build(parse("a[0] := x [L,L]"), m)
        assert l1.var_addr == l2.var_addr
        assert l1.array_addr == l2.array_addr
