"""The benchmark reporting helpers (benchmarks/_report.py).

The bench harness is part of the deliverable (it regenerates the paper's
tables and figures), so its formatting utilities get tests too.
"""

import importlib.util
import json
import os
import sys

import pytest

_REPORT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "_report.py"
)
spec = importlib.util.spec_from_file_location("_report", _REPORT_PATH)
_report = importlib.util.module_from_spec(spec)
spec.loader.exec_module(_report)


class TestReport:
    def test_table_alignment(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_report, "RESULTS_DIR", str(tmp_path))
        r = _report.Report("t", "Title")
        r.table(("a", "bb"), [(1, 22), (333, 4)])
        text = r.emit()
        lines = text.splitlines()
        header = next(l for l in lines if l.startswith("a"))
        sep = lines[lines.index(header) + 1]
        assert set(sep) <= {"-", " "}
        assert (tmp_path / "t.txt").exists()

    def test_expect_verdicts(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_report, "RESULTS_DIR", str(tmp_path))
        r = _report.Report("t2", "Title")
        r.expect("thing", "p", "m", True)
        r.expect("other", "p", "m", False)
        text = r.emit()
        assert "[REPRODUCED] thing" in text
        assert "[DIVERGED] other" in text

    def test_helpers(self):
        assert _report.series_constant([3, 3, 3])
        assert not _report.series_constant([3, 4])
        assert _report.mean([1, 2, 3]) == 2


class TestArtifactWriters:
    def test_write_metrics_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_report, "RESULTS_DIR", str(tmp_path))
        payload = {"schema": "repro.telemetry/1", "runs": 2,
                   "counters": {"steps": 7}}
        path = _report.write_metrics("demo", payload)
        assert path == str(tmp_path / "demo_metrics.json")
        with open(path) as handle:
            assert json.load(handle) == payload

    def test_write_trace_produces_chrome_trace(self, tmp_path, monkeypatch):
        from repro.telemetry import Span

        monkeypatch.setattr(_report, "RESULTS_DIR", str(tmp_path))
        spans = [
            Span(span_id=1, parent_id=None, track=0, name="run",
                 category="run", start=0, end=100),
            Span(span_id=2, parent_id=1, track=0, name="mitigate m1",
                 category="mitigate", start=10, end=90),
        ]
        path = _report.write_trace("demo", spans)
        assert path == str(tmp_path / "demo_trace.json")
        with open(path) as handle:
            doc = json.load(handle)
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert phases.count("B") == len(spans)
        assert phases.count("B") == phases.count("E")

    def test_writers_create_results_dir(self, tmp_path, monkeypatch):
        target = tmp_path / "fresh" / "results"
        monkeypatch.setattr(_report, "RESULTS_DIR", str(target))
        _report.write_metrics("demo", {"runs": 0})
        assert target.is_dir()


class TestAsciiPlot:
    def test_flat_series(self):
        text = _report.ascii_plot({"s": [5, 5, 5]}, width=20, height=4)
        assert "o s" in text
        assert text.count("o") >= 3

    def test_two_series_distinct_markers(self):
        text = _report.ascii_plot(
            {"low": [1, 1, 1], "high": [9, 9, 9]}, width=12, height=5
        )
        assert "o low" in text and "x high" in text
        lines = text.splitlines()
        # high occupies the top row, low the bottom.
        assert "x" in lines[0]
        assert "o" in lines[-2]

    def test_axis_labels(self):
        text = _report.ascii_plot({"s": [10, 90]}, width=10, height=4)
        assert "90 |" in text
        assert "10 |" in text

    def test_empty(self):
        assert _report.ascii_plot({}) == "(empty plot)"

    def test_single_point(self):
        text = _report.ascii_plot({"s": [42]}, width=8, height=3)
        assert "42" in text

    def test_monotone_series_renders_diagonal(self):
        text = _report.ascii_plot({"s": list(range(10))}, width=10,
                                  height=10)
        lines = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        first_col = next(i for i, ch in enumerate(lines[-1]) if ch == "o")
        last_col = next(i for i, ch in enumerate(lines[0]) if ch == "o")
        assert last_col > first_col
