"""The one-stop pipeline: compile_program / CompiledProgram.run."""

import pytest

from repro import Memory, api, chain
from repro.hardware import PartitionedHardware, paper_machine, tiny_machine
from repro.lang import ParseError
from repro.semantics import MitigationState
from repro.typesystem import SecurityEnvironment, TypingError


class TestCompile:
    def test_source_string(self):
        cp = api.compile_program("l := 1", gamma={"l": "L"})
        assert cp.typing.end_label.name == "L"

    def test_ast_input(self):
        from repro.lang import B

        b = B(api.compile_program("l := 1", gamma={"l": "L"}).lattice)
        prog = b.assign("l", 1)
        cp = api.compile_program(prog, gamma={"l": "L"})
        assert cp.program is prog

    def test_gamma_label_objects(self):
        lat = chain(("L", "M", "H"))
        cp = api.compile_program("m := 1", gamma={"m": lat["M"]},
                                 lattice=lat)
        assert cp.gamma["m"] == lat["M"]

    def test_gamma_security_environment(self):
        lat = chain(("L", "M", "H"))
        env = SecurityEnvironment(lat, {"m": lat["M"]})
        cp = api.compile_program("m := 1", gamma=env, lattice=lat)
        assert cp.gamma is env

    def test_parse_error_propagates(self):
        with pytest.raises(ParseError):
            api.compile_program("while {", gamma={})

    def test_typing_error_propagates(self):
        with pytest.raises(TypingError):
            api.compile_program("l := h", gamma={"l": "L", "h": "H"})

    def test_check_false_skips_typecheck(self):
        cp = api.compile_program("l := h", gamma={"l": "L", "h": "H"},
                                 check=False)
        r = cp.run({"l": 0, "h": 7}, hardware="null")
        assert r.memory.read("l") == 7

    def test_infer_false_requires_annotations(self):
        from repro.semantics import SemanticsError

        cp = api.compile_program("l := 1 [L,L]", gamma={"l": "L"},
                                 infer=False)
        assert cp.run({"l": 0}, hardware="null").memory.read("l") == 1
        cp2 = api.compile_program("l := 1 [L,L]; x := 2 [L,L]",
                                  gamma={"l": "L", "x": "L"}, infer=False)
        assert cp2.run({"l": 0, "x": 0}, hardware="null").time > 0

    def test_require_cache_labels_forwarded(self):
        with pytest.raises(TypingError):
            api.compile_program("h := 1 [L,H]", gamma={"h": "H"},
                                infer=False, require_cache_labels=True)


class TestRun:
    def test_memory_mapping_accepted(self):
        cp = api.compile_program("l := a[0]", gamma={"l": "L", "a": "L"})
        r = cp.run({"l": 0, "a": [42, 0]})
        assert r.memory.read("l") == 42

    def test_memory_object_accepted(self):
        cp = api.compile_program("l := 1", gamma={"l": "L"})
        mem = Memory({"l": 0})
        r = cp.run(mem)
        assert r.memory is mem

    def test_hardware_by_name(self):
        cp = api.compile_program("l := 1", gamma={"l": "L"})
        for name in ("null", "nopar", "standard", "nofill", "partitioned"):
            assert cp.run({"l": 0}, hardware=name).time > 0

    def test_hardware_instance(self):
        cp = api.compile_program("l := 1", gamma={"l": "L"})
        env = PartitionedHardware(cp.lattice, tiny_machine())
        r = cp.run({"l": 0}, hardware=env)
        assert r.environment is env

    def test_params_forwarded(self):
        cp = api.compile_program("l := 1", gamma={"l": "L"})
        r1 = cp.run({"l": 0}, hardware="partitioned", params=tiny_machine())
        r2 = cp.run({"l": 0}, hardware="partitioned", params=paper_machine())
        assert r1.time > 0 and r2.time > 0

    def test_mitigation_state_forwarded(self):
        cp = api.compile_program(
            "mitigate(10, H) { sleep(h) }", gamma={"h": "H"}
        )
        state = MitigationState()
        cp.run({"h": 100}, hardware="null", mitigation=state)
        assert state.misses(cp.lattice["H"]) > 0

    def test_mitigate_pc_threaded_automatically(self):
        cp = api.compile_program(
            "mitigate@blk (10, H) { sleep(h) }", gamma={"h": "H"}
        )
        r = cp.run({"h": 3}, hardware="null")
        assert r.mitigations[0].pc_label == cp.lattice["L"]
