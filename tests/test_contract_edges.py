"""Edge cases of the contract checkers themselves.

The checkers are the oracle for the whole verification campaign, so their
degenerate inputs -- empty stimulus budgets, one-point lattices, lattices
with incomparable levels -- must do something sensible rather than crash
or silently report vacuous success as a violation.
"""

import random

import pytest

from repro.hardware import (
    NullHardware,
    StandardHardware,
    run_contract_suite,
    tiny_machine,
)
from repro.hardware.contract import (
    ContractReport,
    Violation,
    _diverging_labels,
    random_stimulus,
)
from repro.lattice import Lattice, chain, diamond, two_point


class TestEmptyBudgets:
    def test_zero_trials_is_a_clean_pass(self):
        lattice = two_point()
        report = run_contract_suite(
            lambda: NullHardware(lattice), lattice, trials=0
        )
        assert report.ok()
        assert report.failing_properties() == ()
        # Nothing was checked -- the report must say so, not claim coverage.
        assert sum(report.checked.values(), 0) == 0

    def test_zero_trials_cannot_absolve_leaky_hardware(self):
        # ok() is True with zero checks; the campaign layer guards against
        # reading that as a security verdict (see ModelVerdict.as_expected),
        # but the report itself must at least expose the zero counts.
        lattice = two_point()
        report = run_contract_suite(
            lambda: StandardHardware(lattice, tiny_machine()),
            lattice,
            trials=0,
        )
        assert report.ok()
        assert not report.checked


class TestSingleLevelLattice:
    def test_suite_runs_on_a_one_point_lattice(self):
        lattice = Lattice(["only"], [])
        report = run_contract_suite(
            lambda: NullHardware(lattice), lattice, trials=3
        )
        assert report.ok()
        # P2/P5 are still exercised; P6/P7 run too (the pair construction
        # has no diverging labels, so the environments are simply equal).
        assert report.checked["P2-determinism"] > 0
        assert report.checked["P6-read-label"] > 0

    def test_one_point_lattice_has_no_diverging_labels(self):
        lattice = Lattice(["only"], [])
        (only,) = lattice.levels()
        assert _diverging_labels(lattice, only) == []


class TestDivergingLabels:
    """_diverging_labels picks write labels that cannot reach <= level."""

    def test_two_point_low(self):
        lattice = two_point()
        low, high = lattice.bottom, lattice.top
        pairs = _diverging_labels(lattice, low)
        assert pairs  # H diverges from an ~L pair
        assert all(write == high for _, write in pairs)

    def test_top_never_diverges(self):
        for lattice in (two_point(), chain(("L", "M", "H")), diamond()):
            assert _diverging_labels(lattice, lattice.top) == []

    def test_chain_middle(self):
        lattice = chain(("L", "M", "H"))
        pairs = _diverging_labels(lattice, lattice["M"])
        assert {write.name for _, write in pairs} == {"H"}

    def test_diamond_incomparable_level(self):
        # At level M1 of the diamond (L <= M1,M2 <= H): below(M1) = {L, M1}.
        # M2 is incomparable to M1, so both M2 and H diverge; writes at L or
        # M1 obviously reach <= M1 and must be excluded.
        lattice = diamond()
        pairs = _diverging_labels(lattice, lattice["M1"])
        writes = {write.name for _, write in pairs}
        assert writes == {"M2", "H"}
        # Every level may appear as the *read* label of a diverging step.
        reads = {read.name for read, _ in pairs}
        assert reads == {level.name for level in lattice.levels()}

    def test_diamond_bottom_sees_everything_else(self):
        lattice = diamond()
        pairs = _diverging_labels(lattice, lattice.bottom)
        assert {write.name for _, write in pairs} == {"M1", "M2", "H"}


class TestRandomStimulus:
    def test_respects_pinned_labels(self):
        lattice = two_point()
        rng = random.Random(0)
        pool = [0x1000_0000, 0x1000_0018]
        for _ in range(50):
            stim = random_stimulus(
                rng, lattice, pool, pool,
                labels=(lattice.bottom, lattice.top),
            )
            assert stim.read_label == lattice.bottom
            assert stim.write_label == lattice.top

    def test_branch_steps_carry_an_outcome(self):
        lattice = two_point()
        rng = random.Random(1)
        pool = [0x1000_0000]
        from repro.hardware import StepKind

        for _ in range(100):
            stim = random_stimulus(rng, lattice, pool, pool)
            if stim.kind is StepKind.BRANCH:
                assert stim.trace.taken in (True, False)
            else:
                assert stim.trace.taken is None


class TestReportSerialization:
    def test_violation_round_trip(self):
        v = Violation("P6-read-label", "cost 10 != 12")
        assert Violation.from_dict(v.as_dict()) == v

    def test_report_round_trip(self):
        report = ContractReport()
        report.record("P2-determinism")
        report.record("P2-determinism")
        report.record(
            "P5-write-label", Violation("P5-write-label", "touched L")
        )
        twin = ContractReport.from_dict(report.as_dict())
        assert twin.checked == report.checked
        assert twin.violations == report.violations
        assert twin.failing_properties() == ("P5-write-label",)
        assert twin.summary() == report.summary()

    def test_clean_report_round_trip_is_clean(self):
        report = ContractReport()
        report.record("P7-single-step-NI")
        twin = ContractReport.from_dict(report.as_dict())
        assert twin.ok()
        assert twin.violations == {}

    def test_as_dict_omits_empty_violation_lists(self):
        report = ContractReport()
        report.record("P2-determinism")
        assert report.as_dict()["violations"] == {}
