"""Unit tests for the four machine-environment models."""

import pytest

from repro.lang import DEFAULT_LATTICE
from repro.lattice import chain
from repro.machine import AccessTrace
from repro.hardware import (
    Hierarchy,
    MachineParams,
    NoFillHardware,
    NullHardware,
    PartitionedHardware,
    StandardHardware,
    StepKind,
    make_hardware,
    paper_machine,
    tiny_machine,
)

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]
CODE = 0x0040_0000
DATA = 0x1000_0000


def trace(instr=CODE, reads=(), writes=()):
    return AccessTrace(instruction=instr, reads=tuple(reads),
                       writes=tuple(writes))


class TestHierarchyCosts:
    def setup_method(self):
        self.h = Hierarchy(paper_machine())
        self.p = paper_machine()

    def test_cold_data_access_cost(self):
        # TLB miss + L1 miss + L2 miss + memory.
        expected = (self.p.data_tlb.miss_penalty + self.p.l1_data.latency
                    + self.p.l2_data.latency + self.p.memory_latency)
        assert self.h.data_access(DATA) == expected
        assert expected == self.h.data_miss_cost()

    def test_warm_hit_cost(self):
        self.h.data_access(DATA)
        assert self.h.data_access(DATA) == self.p.l1_data.latency

    def test_l2_hit_cost(self):
        self.h.data_access(DATA)
        # Evict from L1 only: walk addresses mapping to the same L1 set.
        l1 = self.p.l1_data
        stride = l1.sets * l1.block_bytes
        for i in range(1, l1.ways + 1):
            self.h.l1_data.touch(DATA + i * stride)
        assert not self.h.l1_data.lookup(DATA)
        assert self.h.l2_data.lookup(DATA)
        cost = self.h.data_access(DATA)
        assert cost == l1.latency + self.p.l2_data.latency

    def test_tlb_miss_penalty_separable(self):
        self.h.data_access(DATA)  # warm everything
        self.h.data_tlb.flush()
        cost = self.h.data_access(DATA)
        assert cost == (self.p.data_tlb.miss_penalty
                        + self.p.l1_data.latency)

    def test_no_fill_mode_installs_nothing(self):
        before = self.h.state()
        cost = self.h.data_access(DATA, fill=False, promote=False)
        assert cost == self.h.data_miss_cost()
        assert self.h.state() == before

    def test_silent_hit_promotes_nothing(self):
        self.h.data_access(DATA)
        before = self.h.state()
        cost = self.h.data_access(DATA, fill=False, promote=False)
        assert cost == self.p.l1_data.latency
        assert self.h.state() == before

    def test_inst_side_symmetric(self):
        expected = (self.p.inst_tlb.miss_penalty + self.p.l1_inst.latency
                    + self.p.l2_inst.latency + self.p.memory_latency)
        assert self.h.inst_fetch(CODE) == expected
        assert self.h.inst_fetch(CODE) == self.p.l1_inst.latency


class TestNullHardware:
    def test_fixed_costs(self):
        env = NullHardware(LAT)
        c1 = env.step(StepKind.SKIP, trace(), L, L)
        c2 = env.step(StepKind.SKIP, trace(), H, H)
        assert c1 == c2

    def test_reads_counted(self):
        env = NullHardware(LAT)
        base = env.step(StepKind.ASSIGN, trace(), L, L)
        more = env.step(StepKind.ASSIGN, trace(reads=[DATA, DATA + 4]), L, L)
        assert more == base + 2

    def test_projection_empty(self):
        env = NullHardware(LAT)
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        assert env.project(L) == ()
        assert env.project(H) == ()


class TestStandardHardware:
    def test_caches_warm_up(self):
        env = StandardHardware(LAT, tiny_machine())
        cold = env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        warm = env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        assert warm < cold

    def test_ignores_labels(self):
        # The insecurity: an [H,H] access fills the shared (bottom) cache.
        env = StandardHardware(LAT, tiny_machine())
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), H, H)
        probe = env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        cold_env = StandardHardware(LAT, tiny_machine())
        cold = cold_env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        assert probe < cold

    def test_all_state_at_bottom(self):
        env = StandardHardware(LAT, tiny_machine())
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        assert env.project(H) == ()
        assert env.project(L) != ()


class TestNoFillHardware:
    def test_high_write_label_leaves_state_unchanged(self):
        env = NoFillHardware(LAT, tiny_machine())
        before = env.full_state()
        env.step(StepKind.ASSIGN, trace(reads=[DATA], writes=[DATA + 64]),
                 H, H)
        assert env.full_state() == before

    def test_low_accesses_fill(self):
        env = NoFillHardware(LAT, tiny_machine())
        cold = env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        warm = env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        assert warm < cold

    def test_high_reads_still_see_low_cache(self):
        # Serving hits from the low cache in no-fill mode is allowed; only
        # modification is forbidden.
        env = NoFillHardware(LAT, tiny_machine())
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        hit = env.step(StepKind.ASSIGN, trace(reads=[DATA]), H, H)
        cold_env = NoFillHardware(LAT, tiny_machine())
        cold = cold_env.step(StepKind.ASSIGN, trace(reads=[DATA]), H, H)
        assert hit < cold


class TestPartitionedHardware:
    def test_partitions_isolated(self):
        env = PartitionedHardware(LAT, tiny_machine())
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), H, H)
        assert env.project(L) == PartitionedHardware(
            LAT, tiny_machine()
        ).project(L)
        assert env.project(H) != PartitionedHardware(
            LAT, tiny_machine()
        ).project(H)

    def test_high_search_sees_low_partition(self):
        env = PartitionedHardware(LAT, tiny_machine())
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        hit = env.step(StepKind.ASSIGN, trace(reads=[DATA]), H, H)
        cold_env = PartitionedHardware(LAT, tiny_machine())
        cold = cold_env.step(StepKind.ASSIGN, trace(reads=[DATA]), H, H)
        assert hit < cold

    def test_high_hit_in_low_partition_is_silent(self):
        env = PartitionedHardware(LAT, tiny_machine())
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        low_before = env.project(L)
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), H, H)
        assert env.project(L) == low_before

    def test_low_miss_moves_line_out_of_high(self):
        # Single-copy consistency: an L access to a line resident in the H
        # partition installs it at L and removes it from H, at miss cost.
        env = PartitionedHardware(LAT, tiny_machine())
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), H, H)
        high_hierarchy = env.partitions[H]
        assert high_hierarchy.holds_data(DATA)
        cost = env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        assert not high_hierarchy.holds_data(DATA)
        assert env.partitions[L].holds_data(DATA)
        # The move costs the same as a genuine miss (Property 6).
        cold_env = PartitionedHardware(LAT, tiny_machine())
        cold = cold_env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        assert cost == cold

    def test_move_cost_independent_of_high_state(self):
        with_line = PartitionedHardware(LAT, tiny_machine())
        with_line.step(StepKind.ASSIGN, trace(reads=[DATA]), H, H)
        without = PartitionedHardware(LAT, tiny_machine())
        c1 = with_line.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        c2 = without.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        assert c1 == c2

    def test_mismatched_labels_bypass(self):
        env = PartitionedHardware(LAT, tiny_machine())
        before = env.full_state()
        c1 = env.step(StepKind.ASSIGN, trace(reads=[DATA]), H, L)
        c2 = env.step(StepKind.ASSIGN, trace(reads=[DATA]), H, L)
        assert env.full_state() == before  # no state change
        assert c1 == c2  # constant cost

    def test_multilevel_partitions(self):
        lat = chain(("L", "M", "H"))
        env = PartitionedHardware(lat, tiny_machine())
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), lat["M"], lat["M"])
        # M access must not touch L or H partitions.
        fresh = PartitionedHardware(lat, tiny_machine())
        assert env.project(lat["L"]) == fresh.project(lat["L"])
        assert env.project(lat["H"]) == fresh.project(lat["H"])
        assert env.project(lat["M"]) != fresh.project(lat["M"])

    def test_clone_deep(self):
        env = PartitionedHardware(LAT, tiny_machine())
        env.step(StepKind.ASSIGN, trace(reads=[DATA]), L, L)
        twin = env.clone()
        twin.step(StepKind.ASSIGN, trace(reads=[DATA + 4096]), L, L)
        assert env.project(L) != twin.project(L)


class TestFactory:
    def test_names(self):
        for name in ("null", "standard", "nopar", "nofill", "partitioned"):
            env = make_hardware(name, LAT, tiny_machine() if name != "null" else None)
            assert env.lattice is LAT

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown hardware model"):
            make_hardware("quantum", LAT)

    def test_scaled_down_params(self):
        small = paper_machine().scaled_down(8)
        assert small.l1_data.sets == 16
        assert small.l1_data.latency == paper_machine().l1_data.latency

    def test_paper_machine_matches_table1(self):
        p = paper_machine()
        assert (p.l1_data.sets, p.l1_data.ways, p.l1_data.block_bytes,
                p.l1_data.latency) == (128, 4, 32, 1)
        assert (p.l2_data.sets, p.l2_data.ways, p.l2_data.block_bytes,
                p.l2_data.latency) == (1024, 4, 64, 6)
        assert (p.l1_inst.sets, p.l1_inst.ways, p.l1_inst.block_bytes,
                p.l1_inst.latency) == (512, 1, 32, 1)
        assert (p.l2_inst.sets, p.l2_inst.ways, p.l2_inst.block_bytes,
                p.l2_inst.latency) == (1024, 4, 64, 6)
        assert (p.data_tlb.sets, p.data_tlb.ways, p.data_tlb.page_bytes,
                p.data_tlb.miss_penalty) == (16, 4, 4096, 30)
        assert (p.inst_tlb.sets, p.inst_tlb.ways, p.inst_tlb.page_bytes,
                p.inst_tlb.miss_penalty) == (32, 4, 4096, 30)
