"""The command-line interface (python -m repro)."""

import glob
import json
import os

import pytest

from repro import __version__
from repro.cli import main

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")

LEAKY = "while h > 0 do { h := h - 1 };\nready := 1\n"
MITIGATED = (
    "mitigate(16, H) { while h > 0 do { h := h - 1 } };\nready := 1\n"
)


@pytest.fixture()
def leaky(tmp_path):
    path = tmp_path / "leaky.tl"
    path.write_text(LEAKY)
    return str(path)


@pytest.fixture()
def mitigated(tmp_path):
    path = tmp_path / "mitigated.tl"
    path.write_text(MITIGATED)
    return str(path)


class TestCheck:
    def test_rejects_leaky(self, leaky, capsys):
        rc = main(["check", leaky, "--gamma", "h=H,ready=L"])
        assert rc == 1
        assert "ILL-TYPED" in capsys.readouterr().out

    def test_accepts_mitigated(self, mitigated, capsys):
        rc = main(["check", mitigated, "--gamma", "h=H,ready=L"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "well-typed" in out
        assert "mitigate" in out

    def test_custom_lattice(self, tmp_path, capsys):
        path = tmp_path / "p.tl"
        path.write_text("m := 1\n")
        rc = main(["check", str(path), "--gamma", "m=M",
                   "--levels", "L,M,H"])
        assert rc == 0

    def test_bad_gamma_spec(self, leaky):
        with pytest.raises(SystemExit):
            main(["check", leaky, "--gamma", "h:H"])

    def test_unknown_level(self, leaky):
        with pytest.raises(SystemExit):
            main(["check", leaky, "--gamma", "h=TOPSECRET"])


LINT_DIR = os.path.join(REPO_ROOT, "examples", "lint")

MULTI_BUG = ("// gamma: h=H, l=L\nl := h;\nsleep(h);\nl := 0;\n"
             "mitigate(0, H) { skip }\n")


@pytest.fixture()
def multi_bug(tmp_path):
    path = tmp_path / "multi_bug.tl"
    path.write_text(MULTI_BUG)
    return str(path)


class TestCheckAll:
    def test_reports_every_violation(self, multi_bug, capsys):
        rc = main(["check", multi_bug, "--all"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "TL001" in out
        assert "TL003" in out
        assert "2:1" in out  # real line:col positions

    def test_all_leaves_welltyped_alone(self, mitigated, capsys):
        rc = main(["check", mitigated, "--all", "--gamma", "h=H,ready=L"])
        assert rc == 0
        assert "well-typed" in capsys.readouterr().out

    def test_all_reports_lint_free_but_ill_typed_only_type_errors(
            self, multi_bug, capsys):
        # --all is the type system only: no TL010+ lint codes.
        main(["check", multi_bug, "--all"])
        out = capsys.readouterr().out
        assert "TL010" not in out

    def test_default_check_output_unchanged(self, leaky, capsys):
        rc = main(["check", leaky, "--gamma", "h=H,ready=L"])
        assert rc == 1
        assert capsys.readouterr().out.startswith("ILL-TYPED")

    def test_all_syntax_error_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "broken.tl"
        path.write_text("l := [L,L]\n")
        rc = main(["check", str(path), "--all"])
        assert rc == 2


class TestLint:
    def test_clean_program_exit_0(self, tmp_path, capsys):
        path = tmp_path / "clean.tl"
        path.write_text("// gamma: l=L, out=L\nl := 1;\nout := l + 1;\n"
                        "l := out\n")
        rc = main(["lint", str(path)])
        assert rc == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_findings_exit_1(self, multi_bug, capsys):
        rc = main(["lint", multi_bug])
        assert rc == 1
        out = capsys.readouterr().out
        assert "TL001" in out and "TL010" in out and "TL011" in out
        assert "findings" in out

    def test_missing_file_exit_2(self, tmp_path, capsys):
        rc = main(["lint", str(tmp_path / "nope.tl")])
        assert rc == 2
        assert "repro lint" in capsys.readouterr().err

    def test_syntax_error_exit_2(self, tmp_path, capsys):
        path = tmp_path / "broken.tl"
        path.write_text("l := [L,L]\n")
        rc = main(["lint", str(path)])
        assert rc == 2
        assert "TL000" in capsys.readouterr().out

    def test_corpus_sweep_covers_rule_catalog(self, capsys):
        fixtures = sorted(glob.glob(os.path.join(LINT_DIR, "*.tl")))
        assert fixtures, "examples/lint corpus missing"
        rc = main(["lint", *fixtures, "--format", "json", "--no-audit"])
        assert rc == 2  # the corpus includes the TL000 syntax fixture
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["summary"]["by_code"]) >= 8

    def test_json_format(self, multi_bug, capsys):
        rc = main(["lint", multi_bug, "--format", "json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint/1"
        assert doc["summary"]["total"] >= 3
        assert "audit" in doc

    def test_sarif_format_and_output_file(self, multi_bug, tmp_path,
                                          capsys):
        out_file = tmp_path / "report.sarif"
        rc = main(["lint", multi_bug, "--format", "sarif",
                   "--output", str(out_file)])
        assert rc == 1
        assert "written to" in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]
        assert {r["ruleId"] for r in doc["runs"][0]["results"]} >= {
            "TL001", "TL010"
        }

    def test_gamma_flag_overrides_directive(self, tmp_path, capsys):
        path = tmp_path / "p.tl"
        path.write_text("// gamma: h=L, l=L\nl := h\n")
        rc = main(["lint", str(path), "--gamma", "h=H"])
        assert rc == 1
        assert "TL001" in capsys.readouterr().out

    def test_audit_in_text_output(self, capsys, tmp_path):
        path = tmp_path / "p.tl"
        path.write_text("// gamma: h=H\nmitigate(4, H) { sleep(h) }\n")
        rc = main(["lint", str(path)])
        assert rc == 1  # TL010 inside
        out = capsys.readouterr().out
        assert "static Theorem 2 audit" in out
        assert "relevant" in out

    def test_no_audit_flag(self, capsys, tmp_path):
        path = tmp_path / "p.tl"
        path.write_text("// gamma: h=H\nmitigate(4, H) { sleep(h) }\n")
        main(["lint", str(path), "--no-audit"])
        assert "Theorem 2 audit" not in capsys.readouterr().out

    def test_bad_directive_exit_2(self, tmp_path, capsys):
        path = tmp_path / "p.tl"
        path.write_text("// gamma: h=TOPSECRET\nskip [L,L]\n")
        rc = main(["lint", str(path)])
        assert rc == 2
        assert "unknown security level" in capsys.readouterr().err


class TestLintSelection:
    """`--select` / `--ignore` / `--list-rules`."""

    def test_select_narrows_to_listed_codes(self, multi_bug, capsys):
        rc = main(["lint", multi_bug, "--select", "TL010"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "TL010" in out
        assert "TL001" not in out and "TL011" not in out

    def test_ignore_drops_listed_codes(self, multi_bug, capsys):
        rc = main(["lint", multi_bug, "--ignore", "TL001,TL010"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "TL001" not in out and "TL010" not in out
        assert "TL011" in out

    def test_select_everything_away_exits_0(self, multi_bug, capsys):
        rc = main(["lint", multi_bug, "--select", "TL019"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_codes_are_case_insensitive(self, multi_bug, capsys):
        rc = main(["lint", multi_bug, "--select", "tl010"])
        assert rc == 1
        assert "TL010" in capsys.readouterr().out

    def test_unknown_code_rejected(self, multi_bug, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["lint", multi_bug, "--select", "TL999"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "TL999" in err
        assert "--list-rules" in err

    def test_unknown_code_suggests_nearest(self, multi_bug, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["lint", multi_bug, "--select", "TL01"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "did you mean TL" in err

    def test_unknown_ignore_code_rejected(self, multi_bug, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["lint", multi_bug, "--ignore", "TL026,TL9999"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--ignore" in err
        assert "TL9999" in err

    def test_list_rules_catalog(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        from repro.analysis.rules import RULES
        for code, rule in RULES.items():
            assert code in out
            assert rule.name in out
        assert "29 rules" in out

    def test_no_programs_without_list_rules_exit_2(self, capsys):
        rc = main(["lint"])
        assert rc == 2
        assert "--list-rules" in capsys.readouterr().err


class TestFlowCommand:
    FIXTURE = os.path.join(LINT_DIR, "tl021_unbalanced_secret_branch.tl")

    def test_cfg_dot(self, capsys):
        rc = main(["flow", self.FIXTURE, "--dot", "cfg"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph cfg")
        assert "cost" not in out

    def test_cfg_dot_with_costs(self, capsys):
        rc = main(["flow", self.FIXTURE, "--dot", "cfg",
                   "--costs", "partitioned"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "digraph cfg_partitioned" in out
        assert "cost [" in out

    def test_costs_rejects_tdg(self, capsys):
        rc = main(["flow", self.FIXTURE, "--dot", "tdg",
                   "--costs", "null"])
        assert rc == 2
        assert "--dot cfg" in capsys.readouterr().err

    def test_costs_unknown_model(self, capsys):
        rc = main(["flow", self.FIXTURE, "--dot", "cfg",
                   "--costs", "warpdrive"])
        assert rc == 2


class TestInferAndFix:
    def test_infer_prints_annotated(self, leaky, capsys):
        rc = main(["infer", leaky, "--gamma", "h=H,ready=L"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[H,H]" in out and "[L,L]" in out

    def test_fix_produces_welltyped_output(self, leaky, capsys, tmp_path):
        rc = main(["fix", leaky, "--gamma", "h=H,ready=L"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mitigate" in out
        # The printed program must itself check.
        program = "\n".join(
            line for line in out.splitlines() if not line.startswith("//")
        )
        fixed = tmp_path / "fixed.tl"
        fixed.write_text(program)
        assert main(["check", str(fixed), "--gamma", "h=H,ready=L"]) == 0


class TestRun:
    def test_run_mitigated(self, mitigated, capsys):
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--hardware", "partitioned"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "time:" in out
        assert "final ready = 1" in out
        assert "mitigations (DoublingScheme/local):" in out

    def test_run_scheme_and_penalty_flags(self, mitigated, capsys):
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--scheme", "polynomial", "--penalty", "global"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mitigations (PolynomialScheme(q=2)/global):" in out

    def test_run_arrays(self, tmp_path, capsys):
        path = tmp_path / "arr.tl"
        path.write_text("s := a[0] + a[1] + a[2]\n")
        rc = main(["run", str(path), "--gamma", "a=L,s=L",
                   "--set", "a=1:2:3", "--set", "s=0", "--hardware", "null"])
        assert rc == 0
        assert "final s = 6" in capsys.readouterr().out

    def test_unchecked_flag(self, leaky, capsys):
        rc = main(["run", leaky, "--gamma", "h=H,ready=L",
                   "--set", "h=3", "--set", "ready=0", "--unchecked",
                   "--hardware", "null"])
        assert rc == 0


class TestLeakage:
    def test_mitigated_leakage_bounded(self, mitigated, capsys):
        rc = main(["leakage", mitigated, "--gamma", "h=H,ready=L",
                   "--secret", "h", "--values", "0..16",
                   "--hardware", "null"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Theorem 2 holds" in out

    def test_unmitigated_leaks_more(self, leaky, capsys):
        rc = main(["leakage", leaky, "--gamma", "h=H,ready=L",
                   "--secret", "h", "--values", "0..8", "--unchecked",
                   "--hardware", "null"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Q        = 3.000 bits" in out


class TestServe:
    @pytest.fixture()
    def workload(self, tmp_path):
        path = tmp_path / "workload.json"
        path.write_text(json.dumps({
            "seed": 5,
            "requests": 15,
            "policy": "quantized",
            "quantum": 1024,
            "workers": 2,
            "arrival": {"kind": "open", "mean_gap": 1200},
            "tenants": [
                {"name": "a", "app": "login",
                 "config": {"table_size": 4}},
                {"name": "b", "app": "password",
                 "config": {"length": 4}},
                {"name": "c", "app": "sbox", "config": {"length": 4}},
            ],
        }))
        return str(path)

    def test_serve_audits_clean(self, workload, capsys):
        rc = main(["serve", "--spec", workload])
        assert rc == 0
        out = capsys.readouterr().out
        assert "policy quantized(q=1024)" in out
        assert "audit: OK" in out

    def test_serve_metrics_out_stdout(self, workload, capsys):
        rc = main(["serve", "--spec", workload, "--metrics-out", "-"])
        assert rc == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["schema"] == "repro.telemetry/1"
        assert doc["service"]["audit_ok"] is True
        assert "audit: OK" in captured.err  # summary moved to stderr

    def test_serve_overrides(self, workload, capsys):
        rc = main(["serve", "--spec", workload, "--policy", "fifo",
                   "--requests", "8", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "policy fifo" in out
        assert "8 submitted" in out

    def test_serve_outputs_and_report_round_trip(self, workload, tmp_path,
                                                 capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        journal = tmp_path / "j.jsonl"
        rc = main(["serve", "--spec", workload,
                   "--metrics-out", str(metrics),
                   "--trace-out", str(trace),
                   "--journal-out", str(journal)])
        assert rc == 0
        assert json.loads(trace.read_text())  # Chrome trace events exist
        assert journal.read_text().strip()
        capsys.readouterr()
        rc = main(["report", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "service: policy quantized(q=1024)" in out
        assert "service audit: OK" in out

    def test_serve_rejects_bad_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"tenants": [], "policy": "fifo"}))
        assert main(["serve", "--spec", str(bad)]) == 2
        bad.write_text("not json")
        assert main(["serve", "--spec", str(bad)]) == 2
        missing = tmp_path / "nope.json"
        assert main(["serve", "--spec", str(missing)]) == 2
        capsys.readouterr()

    def test_serve_rejects_bad_override(self, workload, capsys):
        assert main(["serve", "--spec", workload, "--requests", "0"]) == 2
        capsys.readouterr()

    def test_serve_example_spec_is_shipping_quality(self, capsys):
        spec = os.path.join(REPO_ROOT, "examples", "service", "basic.json")
        raw = json.loads(open(spec).read())
        assert raw["requests"] >= 100
        assert len(raw["tenants"]) >= 3
        assert raw["policy"] == "quantized"


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert f"repro {__version__}" in out

    def test_version_matches_package_metadata(self):
        # The single source of truth is the installed distribution
        # metadata, not a hand-maintained string.
        assert __version__ == "1.0.0"


class TestReport:
    @pytest.fixture()
    def metrics_doc(self, mitigated, tmp_path):
        path = tmp_path / "metrics.json"
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--metrics-out", str(path)])
        assert rc == 0
        return path

    def test_report_on_run_metrics(self, metrics_doc, capsys):
        capsys.readouterr()
        rc = main(["report", str(metrics_doc)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mitigate sites" in out
        assert "leakage verdict" in out
        assert "static Theorem 2 bound" in out
        assert ": ok" in out

    def test_report_on_journal(self, mitigated, capsys, tmp_path):
        journal = tmp_path / "journal.jsonl"
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--journal-out", str(journal)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["report", str(journal)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mitigate sites" in out
        assert "time sinks (top first):" in out

    def test_report_on_committed_bench_metrics(self, capsys):
        path = os.path.join(REPO_ROOT, "benchmarks", "results",
                            "fig7_metrics.json")
        if not os.path.exists(path):
            pytest.skip("benches not yet run in this checkout")
        rc = main(["report", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "leakage verdict" in out
        assert "VIOLATED" not in out

    def test_violated_bound_exits_one(self, metrics_doc, capsys):
        doc = json.loads(metrics_doc.read_text())
        doc["leakage"]["within_bound"] = False
        doc["leakage"]["observed_bits"] = 99.0
        metrics_doc.write_text(json.dumps(doc))
        capsys.readouterr()
        rc = main(["report", str(metrics_doc)])
        assert rc == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_missing_file_exits_two(self, capsys, tmp_path):
        rc = main(["report", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "repro report:" in capsys.readouterr().err

    def test_non_telemetry_document_exits_two(self, capsys, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        rc = main(["report", str(path)])
        assert rc == 2
        assert "repro report:" in capsys.readouterr().err

    def test_truncated_json_exits_two(self, metrics_doc, capsys):
        # A document cut off mid-write (crashed producer, partial copy)
        # must produce a diagnostic, not a traceback.
        metrics_doc.write_text(metrics_doc.read_text()[:200])
        capsys.readouterr()
        rc = main(["report", str(metrics_doc)])
        assert rc == 2
        assert "repro report:" in capsys.readouterr().err

    def test_document_missing_sections_exits_two(self, metrics_doc, capsys):
        # Valid JSON whose expected sections were nulled or dropped used
        # to traceback inside the renderer; it must exit 2 instead.
        doc = json.loads(metrics_doc.read_text())
        doc["timing"] = None
        doc.pop("mitigation", None)
        metrics_doc.write_text(json.dumps(doc))
        capsys.readouterr()
        rc = main(["report", str(metrics_doc)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "truncated or malformed" in err

    def test_non_object_journal_record_exits_two(self, capsys, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text(
            '{"type": "header"}\n{"type": "span"}\n[1, 2, 3]\n'
        )
        rc = main(["report", str(journal)])
        assert rc == 2
        assert "JSON objects" in capsys.readouterr().err

    def test_report_renders_profile_section(self, mitigated, tmp_path,
                                            capsys):
        metrics = tmp_path / "profiled.json"
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--profile", "--metrics-out", str(metrics)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["report", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile (subsystem attribution):" in out
        assert "hardware.partitioned" in out
        assert "total attributed cycles:" in out


class TestProfileFlags:
    def test_run_profile_prints_summary(self, mitigated, capsys):
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert "hardware.partitioned" in out
        assert "total attributed cycles:" in out

    def test_run_prom_out_writes_exposition(self, mitigated, tmp_path,
                                            capsys):
        prom = tmp_path / "metrics.prom"
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0",
                   "--prom-out", str(prom)])
        assert rc == 0
        capsys.readouterr()
        text = prom.read_text()
        assert "# TYPE repro_profile_cycles_total counter" in text
        assert 'subsystem="hardware.partitioned"' in text

    def test_serve_profile_reports_tenant_burn_down(self, tmp_path, capsys):
        spec = os.path.join(REPO_ROOT, "examples", "service", "basic.json")
        prom = tmp_path / "serve.prom"
        rc = main(["serve", "--spec", spec, "--requests", "12",
                   "--profile", "--prom-out", str(prom)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "leakage-budget burn-down (bits):" in out
        assert "latency gateway.latency" in out
        text = prom.read_text()
        assert "repro_profile_tenant_budget_bits" in text
        assert 'kind="remaining"' in text

    def test_run_without_profile_stays_quiet(self, mitigated, capsys):
        rc = main(["run", mitigated, "--gamma", "h=H,ready=L",
                   "--set", "h=9", "--set", "ready=0"])
        assert rc == 0
        assert "profile:" not in capsys.readouterr().out


class TestContract:
    def test_partitioned_passes(self, capsys):
        rc = main(["contract", "partitioned", "--trials", "4"])
        assert rc == 0
        assert "all contract properties hold" in capsys.readouterr().out

    def test_nopar_fails(self, capsys):
        rc = main(["contract", "nopar", "--trials", "4"])
        assert rc == 1
        assert "P5-write-label" in capsys.readouterr().out

    def test_unknown_model_is_a_usage_error(self, capsys):
        # argparse enforces the registry-derived choices list.
        with pytest.raises(SystemExit) as excinfo:
            main(["contract", "vaporware"])
        assert excinfo.value.code == 2
        assert "vaporware" in capsys.readouterr().err


class TestVerifyHw:
    def test_list_catalogs_the_zoo(self, capsys):
        rc = main(["verify-hw", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("null", "standard", "writeback", "speculative",
                     "leakytlb"):
            assert name in out
        assert "nopar" in out  # aliases are advertised too

    def test_secure_subset_passes(self, capsys, tmp_path):
        output = tmp_path / "campaign.json"
        rc = main([
            "verify-hw", "--models", "null", "--lattices", "two_point",
            "--max-examples", "15", "--no-quantify",
            "--output", str(output),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "derandomization seed: 0" in out
        assert "campaign passed" in out
        doc = json.loads(output.read_text())
        assert doc["schema"] == "repro.verify-hw.campaign/1"
        assert doc["ok"] is True

    def test_detected_leak_writes_counterexample_artifact(
        self, capsys, tmp_path
    ):
        rc = main([
            "verify-hw", "--models", "bus", "--max-examples", "60",
            "--seed", "3", "--no-quantify",
            "--counterexamples", str(tmp_path),
        ])
        assert rc == 0
        assert "VIOLATED P6-read-label" in capsys.readouterr().out
        artifact = tmp_path / "counterexample_bus_two_point_tiny.json"
        doc = json.loads(artifact.read_text())
        assert doc["schema"] == "repro.verify-hw/1"
        assert doc["model"] == "bus"

    def test_undetected_insecure_model_fails_the_campaign(self, capsys):
        # Two examples cannot find the speculative leak (verified for seed
        # 0): the campaign must fail rather than quietly pass the model.
        rc = main([
            "verify-hw", "--models", "speculative", "--max-examples", "2",
            "--seed", "0", "--no-quantify",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "CAMPAIGN FAILED" in out
        assert "undetected" in out

    def test_unknown_model_is_a_usage_error(self, capsys):
        rc = main(["verify-hw", "--models", "bogus"])
        assert rc == 2
        assert "unknown hardware model" in capsys.readouterr().err

    def test_unknown_lattice_is_a_usage_error(self, capsys):
        rc = main(["verify-hw", "--lattices", "pentagon"])
        assert rc == 2
        assert "pentagon" in capsys.readouterr().err


class TestAttack:
    def test_list_catalogs_the_registry(self, capsys):
        rc = main(["attack", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("password-crack", "password-crack-mitigated",
                     "tag-forge", "contention-probe"):
            assert name in out

    def test_quantized_defeats_every_attack(self, capsys, tmp_path):
        out_path = tmp_path / "campaign.json"
        rc = main(["attack", "--policy", "quantized", "--quick",
                   "--attacks", "password-crack,tag-forge",
                   "--seed", "7", "--output", str(out_path)])
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.adversary/1"
        assert doc["cells"]
        assert all(cell["within_budget"] for cell in doc["cells"])
        text = capsys.readouterr().out
        assert "defeated" in text
        assert "campaign: OK" in text

    def test_fifo_satisfies_the_positive_control(self, capsys):
        rc = main(["attack", "--policy", "fifo", "--quick",
                   "--attacks", "password-crack", "--seed", "7",
                   "--format", "json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["positive_control"]["checked"]
        assert doc["positive_control"]["ok"]
        (cell,) = doc["cells"]
        assert cell["bits_extracted"] > 0
        assert cell["significant"]

    def test_rejects_unknown_policy(self, capsys):
        rc = main(["attack", "--policy", "lifo"])
        assert rc == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_rejects_unknown_attack(self, capsys):
        rc = main(["attack", "--attacks", "port-scan",
                   "--policy", "fifo", "--quick"])
        assert rc == 2
        assert "unknown attack" in capsys.readouterr().err
