"""The web-login case study (Sec. 8.3) behaves like the paper says."""

import pytest

from repro.apps.login import (
    CredentialTable,
    LoginSystem,
    login_attempt_times,
    summarize_valid_invalid,
)
from repro.attacks import username_probe
from repro.semantics import MitigationState
from repro.typesystem import TypingError, typecheck

TABLE = 12  # small table keeps the suite fast; the bench uses 100


@pytest.fixture(scope="module")
def creds():
    return CredentialTable.generate(size=TABLE, valid=4, seed=11)


@pytest.fixture(scope="module")
def unmitigated():
    return LoginSystem(table_size=TABLE, mitigated=False)


@pytest.fixture(scope="module")
def mitigated():
    system = LoginSystem(table_size=TABLE, mitigated=True)
    system.calibrate_budget(attempts=4)
    return system


class TestFunctionalBehaviour:
    def test_valid_login_sets_state(self, unmitigated, creds):
        r = unmitigated.run(creds, creds.usernames[0], creds.passwords[0])
        assert r.memory.read("state") == 1
        assert r.memory.read("found") == 1
        assert r.memory.read("response") == 1

    def test_wrong_password_rejected(self, unmitigated, creds):
        r = unmitigated.run(creds, creds.usernames[0], "wrongpwd")
        assert r.memory.read("found") == 1
        assert r.memory.read("state") == 0

    def test_invalid_username_rejected(self, unmitigated, creds):
        r = unmitigated.run(creds, creds.usernames[TABLE - 1], "whatever")
        assert r.memory.read("found") == 0
        assert r.memory.read("state") == 0

    def test_response_value_always_one(self, unmitigated, creds):
        # The storage channel is closed by design; only timing remains.
        for i in (0, TABLE - 1):
            r = unmitigated.run(creds, creds.usernames[i],
                                creds.passwords[i])
            assert r.memory.read("response") == 1

    def test_mitigated_functionally_identical(self, mitigated, creds):
        r = mitigated.run(creds, creds.usernames[1], creds.passwords[1])
        assert r.memory.read("state") == 1


class TestTypeDiscipline:
    def test_unmitigated_is_ill_typed(self, unmitigated):
        # The paper: "without a mitigate command, type checking fails at
        # line 11" (the public response assignment).
        with pytest.raises(TypingError):
            typecheck(unmitigated.program, unmitigated.gamma)

    def test_mitigated_typechecks(self, mitigated):
        info = typecheck(mitigated.program, mitigated.gamma)
        assert "login_search" in info.mitigate_pc


class TestTimingChannel:
    @pytest.mark.parametrize("hardware", ["nopar", "partitioned"])
    def test_unmitigated_distinguishes_valid_usernames(
        self, unmitigated, creds, hardware
    ):
        times = login_attempt_times(unmitigated, creds, hardware=hardware)
        validity = [creds.is_valid(i) for i in range(TABLE)]
        probe = username_probe(times, validity)
        assert probe.accuracy == 1.0  # the Bortz-Boneh attack succeeds

    def test_valid_attempts_slower(self, unmitigated, creds):
        times = login_attempt_times(unmitigated, creds, hardware="nopar")
        s = summarize_valid_invalid(times, creds)
        assert s["valid"] > s["invalid"]

    def test_mitigated_attempts_constant(self, mitigated, creds):
        times = login_attempt_times(mitigated, creds, hardware="partitioned")
        assert len(set(times)) == 1

    def test_mitigated_independent_of_secret(self, mitigated):
        # Fig. 7 bottom: curves for different secret tables coincide.
        streams = []
        for valid in (2, 6, TABLE):
            table = CredentialTable.generate(size=TABLE, valid=valid, seed=5)
            times = login_attempt_times(mitigated, table,
                                        hardware="partitioned")
            streams.append(tuple(times))
        assert len(set(streams)) == 1

    def test_mitigation_state_persists_across_requests(self, mitigated,
                                                       creds):
        # A shared server-side predictor keeps later attempts at the same
        # padded duration even after a misprediction.
        state = MitigationState()
        small_budget = LoginSystem(table_size=TABLE, mitigated=True,
                                   budget=10)
        t1 = small_budget.run(creds, creds.usernames[0], creds.passwords[0],
                              mitigation=state).time
        t2 = small_budget.run(creds, creds.usernames[0], creds.passwords[0],
                              mitigation=state).time
        assert t1 == t2
        assert state.snapshot()  # the tiny budget must have mispredicted


class TestWorkloadGeneration:
    def test_valid_count_respected(self):
        t = CredentialTable.generate(size=10, valid=3, seed=0)
        assert t.valid == 3
        assert [t.is_valid(i) for i in range(10)].count(True) == 3

    def test_digests_match_usernames(self):
        from repro.apps.hashing import encode, fnv1a
        from repro.apps.login import _pad, USERNAME_LENGTH

        t = CredentialTable.generate(size=6, valid=6, seed=1)
        for i in range(6):
            assert t.username_digests[i] == fnv1a(
                encode(_pad(t.usernames[i], USERNAME_LENGTH))
            )

    def test_sentinels_collide_with_nothing(self):
        t = CredentialTable.generate(size=10, valid=2, seed=3)
        real = set(t.username_digests[:2])
        sentinels = set(t.username_digests[2:])
        assert not real & sentinels

    def test_bad_valid_count(self):
        with pytest.raises(ValueError):
            CredentialTable.generate(size=5, valid=9)

    def test_deterministic_by_seed(self):
        a = CredentialTable.generate(size=5, valid=2, seed=9)
        b = CredentialTable.generate(size=5, valid=2, seed=9)
        assert a.usernames == b.usernames
        assert a.username_digests == b.username_digests
