"""Remaining corner coverage: CLI on custom lattices, branch-enabled runs
through the public API, powerset labels end to end, and negative spaces."""

import pytest

from repro import api
from repro.cli import main
from repro.hardware import (
    BranchPredictorParams,
    MachineParams,
    PartitionedHardware,
)
from repro.lattice import powerset
from repro.machine import Memory
from repro.semantics import execute
from repro.typesystem import SecurityEnvironment, typecheck


class TestCliCustomLattices:
    def test_fix_on_three_level_chain(self, tmp_path, capsys):
        path = tmp_path / "p.tl"
        path.write_text("sleep(m); l := 1\n")
        rc = main(["fix", str(path), "--gamma", "m=M,l=L",
                   "--levels", "L,M,H"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mitigate(1, M)" in out  # minimal level, not H

    def test_contract_on_chain(self, capsys):
        rc = main(["contract", "partitioned", "--levels", "L,M,H",
                   "--trials", "3"])
        assert rc == 0

    def test_run_reports_steps(self, tmp_path, capsys):
        path = tmp_path / "p.tl"
        path.write_text("x := 1; y := x + 1\n")
        rc = main(["run", str(path), "--gamma", "x=L,y=L",
                   "--set", "x=0", "--set", "y=0", "--hardware", "null"])
        assert rc == 0
        assert "steps" in capsys.readouterr().out


class TestBranchPredictorViaApi:
    def test_compiled_run_with_predictor(self):
        params = MachineParams(branch=BranchPredictorParams(entries=32,
                                                            penalty=3))
        cp = api.compile_program(
            "i := 6; while i > 0 do { i := i - 1 }",
            gamma={"i": "L"},
        )
        with_bp = cp.run({"i": 0}, hardware="partitioned", params=params)
        without = cp.run({"i": 0}, hardware="partitioned")
        assert with_bp.time != without.time  # penalties materialized
        assert with_bp.memory == without.memory  # semantics unchanged


class TestPowersetEndToEnd:
    def test_program_with_brace_labels_runs(self):
        lat = powerset(["a", "b"])
        cp = api.compile_program(
            "pub := 1 [{},{}]; "
            "mitigate(4, {a,b}) { sleep(sa) [{a},{a}] } [{},{}]; "
            "pub := 2 [{},{}]",
            gamma={"pub": "{}", "sa": "{a}"},
            lattice=lat, infer=False,
        )
        result = cp.run({"pub": 0, "sa": 5}, hardware="partitioned")
        assert result.memory.read("pub") == 2
        assert result.mitigations[0].level == lat["{a,b}"]

    def test_partitioned_hardware_per_subset(self):
        lat = powerset(["a", "b"])
        env = PartitionedHardware(lat)
        assert set(env.partitions) == set(lat.levels())


class TestNegativeSpaces:
    def test_gamma_must_cover_program(self):
        from repro.typesystem import UnboundVariable

        with pytest.raises(UnboundVariable):
            api.compile_program("mystery := 1", gamma={})

    def test_label_from_wrong_lattice_rejected(self):
        from repro.lattice import two_point

        other = two_point()
        with pytest.raises(ValueError, match="different lattice"):
            SecurityEnvironment(two_point(), {"x": other["L"]})

    def test_execute_requires_env_lattice_consistency(self):
        # Labels from a foreign lattice surface as LatticeError during the
        # hardware's flows_to checks.
        from repro.lang import parse
        from repro.lattice import LatticeError, two_point
        from repro.hardware import tiny_machine

        program = parse("x := 1 [L,L]")  # DEFAULT_LATTICE labels
        env = PartitionedHardware(two_point(), tiny_machine())  # foreign
        with pytest.raises((LatticeError, KeyError)):
            execute(program, Memory({"x": 0}), env)

    def test_mitigate_on_bottom_level_is_pointless_but_legal(self):
        # lev = L bounds nothing above L; the body must stay public.
        cp = api.compile_program(
            "mitigate(4, L) { l := 1 }", gamma={"l": "L"}
        )
        assert cp.typing.mitigate_level[
            next(iter(cp.typing.mitigate_level))
        ].name == "L"

    def test_mitigate_level_too_low_rejected(self):
        from repro.typesystem import TypingError

        with pytest.raises(TypingError, match="mitigate level"):
            api.compile_program(
                "mitigate(4, L) { sleep(h) }", gamma={"h": "H", "l": "L"}
            )
