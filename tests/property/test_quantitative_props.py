"""Hypothesis properties of the mitigation runtime and leakage measures."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro import api
from repro.lang import DEFAULT_LATTICE
from repro.machine import Memory
from repro.hardware import NullHardware
from repro.quantitative import (
    leakage_bound,
    measure_leakage,
    min_entropy_leakage,
    secret_variants,
    shannon_leakage,
    timing_variations,
)
from repro.semantics import DoublingScheme, MitigationState, PolynomialScheme

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]


# --- mitigation state properties -------------------------------------------

estimates = st.integers(min_value=0, max_value=1 << 16)
elapsed_times = st.integers(min_value=0, max_value=1 << 20)
schemes = st.sampled_from(
    [DoublingScheme(), PolynomialScheme(1), PolynomialScheme(3)]
)


@given(schemes, estimates, elapsed_times)
@settings(deadline=None)
def test_settle_exceeds_elapsed(scheme, estimate, elapsed):
    state = MitigationState(scheme=scheme)
    total = state.settle(estimate, H, elapsed)
    assert total > elapsed  # the padded duration strictly covers the body


@given(schemes, estimates, st.lists(elapsed_times, min_size=1, max_size=8))
@settings(deadline=None)
def test_miss_counter_monotone(scheme, estimate, sequence):
    state = MitigationState(scheme=scheme)
    last = 0
    for elapsed in sequence:
        state.settle(estimate, H, elapsed)
        assert state.misses(H) >= last
        last = state.misses(H)


@given(estimates, elapsed_times)
@settings(deadline=None)
def test_doubling_duration_is_estimate_times_power_of_two(estimate, elapsed):
    state = MitigationState()
    total = state.settle(estimate, H, elapsed)
    base = max(estimate, 1)
    assert total % base == 0
    ratio = total // base
    assert ratio & (ratio - 1) == 0  # power of two


@given(schemes, estimates, elapsed_times)
@settings(deadline=None)
def test_settle_idempotent_for_smaller_bodies(scheme, estimate, elapsed):
    state = MitigationState(scheme=scheme)
    first = state.settle(estimate, H, elapsed)
    # Any later body that fits under the prediction keeps it unchanged.
    again = state.settle(estimate, H, max(first - 1, 0))
    assert again == first


@given(elapsed_times)
@settings(deadline=None)
def test_doubling_misses_logarithmic(elapsed):
    state = MitigationState()
    state.settle(1, H, elapsed)
    assert state.misses(H) <= math.log2(elapsed + 1) + 1


# --- leakage measurement properties ------------------------------------------

secret_counts = st.integers(min_value=1, max_value=24)


def _measure(src, n, check=True):
    cp = api.compile_program(src, gamma={"h": "H", "l": "L"}, check=check)
    base = Memory({"h": 0, "l": 0})
    variants = secret_variants(base, ({"h": v} for v in range(n)))
    return measure_leakage(
        cp.program, cp.gamma, LAT, [H], L, base, NullHardware(LAT),
        variants, mitigate_pc=cp.typing.mitigate_pc,
    )


@given(secret_counts)
@settings(max_examples=20, deadline=None)
def test_leakage_bounded_by_log_secret_count(n):
    result = _measure("sleep(h); l := 1", n, check=False)
    assert result.bits <= math.log2(n) + 1e-9


@given(secret_counts)
@settings(max_examples=20, deadline=None)
def test_entropy_measures_bounded_by_count_measure(n):
    result = _measure("mitigate(2, H) { sleep(h) }; l := 1", n)
    assert shannon_leakage(result.observations) <= result.bits + 1e-9
    assert min_entropy_leakage(result.observations) <= result.bits + 1e-9


@given(st.integers(min_value=2, max_value=24))
@settings(max_examples=15, deadline=None)
def test_more_variants_never_decrease_leakage(n):
    small = _measure("mitigate(2, H) { sleep(h) }; l := 1", n)
    large = _measure("mitigate(2, H) { sleep(h) }; l := 1", n + 8)
    assert large.distinguishable >= small.distinguishable


@given(st.integers(min_value=2, max_value=20))
@settings(max_examples=15, deadline=None)
def test_theorem2_pointwise_on_random_sizes(n):
    cp = api.compile_program("mitigate(2, H) { sleep(h) }; l := 1",
                             gamma={"h": "H", "l": "L"})
    base = Memory({"h": 0, "l": 0})
    variants = secret_variants(base, ({"h": v} for v in range(n)))
    q = measure_leakage(
        cp.program, cp.gamma, LAT, [H], L, base, NullHardware(LAT),
        variants, mitigate_pc=cp.typing.mitigate_pc,
    )
    v = timing_variations(
        cp.program, LAT, [H], L, base, NullHardware(LAT), variants,
        mitigate_pc=cp.typing.mitigate_pc,
    )
    assert q.bits <= v.bits + 1e-9


@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=2, max_value=1 << 20))
@settings(deadline=None)
def test_bound_monotone(k, t):
    b1 = leakage_bound(LAT, [H], L, t, k)
    b2 = leakage_bound(LAT, [H], L, t * 2, k)
    b3 = leakage_bound(LAT, [H], L, t, k + 1)
    assert b1 <= b2 and b1 <= b3
