"""Hypothesis properties of the cache/TLB simulators."""

from hypothesis import given, settings, strategies as st

from repro.hardware import Cache, CacheParams, Tlb, TlbParams

geometries = st.sampled_from([
    CacheParams(2, 1, 8, 1),
    CacheParams(4, 2, 16, 1),
    CacheParams(8, 4, 32, 1),
    CacheParams(1, 2, 16, 1),
])

addresses = st.lists(
    st.integers(min_value=0, max_value=4095), min_size=1, max_size=60
)


@given(geometries, addresses)
def test_occupancy_never_exceeds_capacity(params, addrs):
    cache = Cache(params)
    for a in addrs:
        cache.touch(a)
    assert cache.occupancy() <= params.sets * params.ways


@given(geometries, addresses)
def test_most_recent_access_always_resident(params, addrs):
    cache = Cache(params)
    for a in addrs:
        cache.touch(a)
        assert cache.lookup(a)


@given(geometries, addresses)
def test_touch_returns_lookup(params, addrs):
    cache = Cache(params)
    for a in addrs:
        present = cache.lookup(a)
        hit = cache.touch(a)
        assert hit == present


@given(geometries, addresses)
def test_clone_equivalent_and_independent(params, addrs):
    cache = Cache(params)
    for a in addrs[: len(addrs) // 2]:
        cache.touch(a)
    twin = cache.clone()
    assert twin.state() == cache.state()
    for a in addrs[len(addrs) // 2:]:
        twin.touch(a)
    # The original must be unaffected by the twin's subsequent traffic.
    replay = Cache(params)
    for a in addrs[: len(addrs) // 2]:
        replay.touch(a)
    assert cache.state() == replay.state()


@given(geometries, addresses)
def test_state_determines_behaviour(params, addrs):
    c1, c2 = Cache(params), Cache(params)
    for a in addrs:
        c1.touch(a)
        c2.touch(a)
    assert c1.state() == c2.state()
    probe = addrs[0] + 8192
    assert c1.touch(probe) == c2.touch(probe)
    assert c1.state() == c2.state()


@given(geometries, addresses)
def test_evict_is_precise(params, addrs):
    cache = Cache(params)
    for a in addrs:
        cache.touch(a)
    target = addrs[-1]
    cache.evict(target)
    assert not cache.lookup(target)
    # Evicting never disturbs other sets' contents.
    block = target // params.block_bytes
    for a in addrs:
        if (a // params.block_bytes) % params.sets != block % params.sets:
            # Different set: unaffected by the eviction.
            pass  # presence depends on earlier traffic; just must not crash
    assert cache.occupancy() <= params.sets * params.ways


@given(addresses)
def test_tlb_same_page_shares_entry(addrs):
    tlb = Tlb(TlbParams(2, 2, 256, 30))
    for a in addrs:
        tlb.touch(a)
        page_base = (a // 256) * 256
        assert tlb.lookup(page_base)
        assert tlb.lookup(page_base + 255)
