"""Mutation testing of the type checker: weakenings must be caught.

A checker that accepts everything passes all positive tests; these
properties attack from the other side, mutating well-typed programs into
insecure ones and requiring a rejection:

* lowering the *write label* of a command in a high context below its pc
  reintroduces the Sec. 2.2 hardware implicit flow;
* lowering a high-context assignment *target's* Gamma label reintroduces a
  classic implicit flow;
* appending a public assignment after high-timing code reintroduces the
  direct channel.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.lang import DEFAULT_LATTICE, ast, labeled_commands
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import (
    SecurityEnvironment,
    TypingError,
    infer_labels,
    is_well_typed,
    typecheck,
)

LAT = DEFAULT_LATTICE
GAMMA = standard_gamma(LAT)


def _welltyped(seed, **cfg):
    gen = ProgramGenerator(
        GAMMA, random.Random(seed),
        GeneratorConfig(max_depth=2, max_block_length=3, **cfg),
    )
    program = gen.program()
    infer_labels(program, GAMMA)
    info = typecheck(program, GAMMA)
    return program, info


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_lowering_write_label_in_high_context_rejected(seed):
    program, info = _welltyped(seed)
    mutated = False
    for cmd in labeled_commands(program):
        ctx = info.node_contexts.get(cmd.node_id)
        if ctx is None:
            continue
        if ctx.pc != LAT["L"] and cmd.write_label == ctx.pc:
            cmd.write_label = LAT["L"]  # the Sec. 2.2 insecurity
            mutated = True
            break
    if not mutated:
        return  # no high-context command in this sample
    assert not is_well_typed(program, GAMMA)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_public_suffix_after_high_timing_rejected(seed):
    program, info = _welltyped(seed)
    if info.end_label == LAT["L"]:
        return  # the program's timing stayed public
    leaky = ast.seq(program, ast.Assign(
        target="l0", expr=ast.IntLit(1),
        read_label=LAT["L"], write_label=LAT["L"],
    ))
    assert not is_well_typed(leaky, GAMMA)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_retargeting_high_assignment_to_public_rejected(seed):
    program, info = _welltyped(seed)
    for cmd in labeled_commands(program):
        ctx = info.node_contexts.get(cmd.node_id)
        if ctx is None or not isinstance(cmd, ast.Assign):
            continue
        if ctx.pc != LAT["L"]:
            # Re-aim a high-context assignment at a public variable.
            cmd.target = "l0"
            assert not is_well_typed(program, GAMMA)
            return


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_raising_mitigation_level_keeps_typability(seed):
    # The benign mutation direction: raising a mitigate's level can never
    # break a well-typed program (level only appears as an upper bound).
    program, _ = _welltyped(seed)
    for cmd in labeled_commands(program):
        if isinstance(cmd, ast.Mitigate):
            cmd.level = LAT.top
    assert is_well_typed(program, GAMMA)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_raising_write_labels_above_pc_keeps_pc_condition(seed):
    # Raising write labels preserves pc <= lw, but may break T-ASGN's
    # lr-into-target condition only via lr -- which we keep.  So raising
    # lw alone never *introduces* a pc violation.
    program, info = _welltyped(seed)
    for cmd in labeled_commands(program):
        cmd.write_label = LAT.top
    try:
        typecheck(program, GAMMA)
    except TypingError as err:
        # Permitted failures exist only if the hardware side condition is
        # requested; with plain typecheck, raising lw is always safe.
        raise AssertionError(f"raising lw broke typability: {err}")
