"""Hypothesis-driven checks of Properties 5-7 on the secure designs.

Complementary to the seeded checkers in repro.hardware.contract: hypothesis
chooses the access sequences, including adversarial shrunk ones.
"""

from hypothesis import given, settings, strategies as st

from repro.lang import DEFAULT_LATTICE
from repro.lattice import chain
from repro.machine import AccessTrace
from repro.hardware import (
    NoFillHardware,
    PartitionedHardware,
    StepKind,
    tiny_machine,
)

LAT = DEFAULT_LATTICE
L3 = chain(("L", "M", "H"))

# A tiny address pool maximizes collisions in the tiny caches.
pool = st.integers(min_value=0, max_value=7).map(
    lambda i: 0x1000_0000 + i * 8
)


def step_st(lattice):
    labels = st.sampled_from(lattice.levels())
    return st.builds(
        lambda instr, reads, writes, r, w: (
            AccessTrace(instruction=instr, reads=tuple(reads),
                        writes=tuple(writes)),
            r,
            w,
        ),
        pool,
        st.lists(pool, max_size=2),
        st.lists(pool, max_size=1),
        labels,
        labels,
    )


def steps_st(lattice, max_size=25):
    return st.lists(step_st(lattice), max_size=max_size)


FACTORIES = [
    lambda lat: NoFillHardware(lat, tiny_machine()),
    lambda lat: PartitionedHardware(lat, tiny_machine()),
]


@given(steps_st(LAT))
@settings(max_examples=80, deadline=None)
def test_property5_write_label_two_point(steps):
    _check_property5(LAT, steps)


@given(steps_st(L3))
@settings(max_examples=60, deadline=None)
def test_property5_write_label_chain(steps):
    _check_property5(L3, steps)


def _check_property5(lattice, steps):
    for factory in FACTORIES:
        env = factory(lattice)
        for trace, r, w in steps:
            before = {
                level: env.project(level)
                for level in lattice.levels()
                if not w.flows_to(level)
            }
            env.step(StepKind.ASSIGN, trace, r, w)
            for level, snapshot in before.items():
                assert env.project(level) == snapshot, (
                    f"lw={w} modified level {level}"
                )


@given(steps_st(LAT), step_st(LAT))
@settings(max_examples=80, deadline=None)
def test_property7_single_step_ni(history, probe):
    # Build a ~L pair by applying high-only divergence to one side.
    trace, r, w = probe
    for factory in FACTORIES:
        env1 = factory(LAT)
        env2 = factory(LAT)
        for t, rr, ww in history:
            env1.step(StepKind.ASSIGN, t, rr, ww)
            env2.step(StepKind.ASSIGN, t, rr, ww)
        # Diverge env2 with [H,H] steps only (cannot touch L by P5).
        env2.step(
            StepKind.ASSIGN,
            AccessTrace(instruction=0x1000_0040, reads=(0x1000_0018,)),
            LAT["H"], LAT["H"],
        )
        if not env1.equivalent_to(env2, LAT["L"]):
            continue  # P5 failure would be caught by the other test
        c1 = env1.step(StepKind.ASSIGN, trace, r, w)
        c2 = env2.step(StepKind.ASSIGN, trace, r, w)
        assert env1.equivalent_to(env2, LAT["L"]), "P7 violated at L"
        if r == LAT["L"]:
            assert c1 == c2, "P6 violated: lr=L cost saw H state"


@given(steps_st(LAT))
@settings(max_examples=50, deadline=None)
def test_determinism_full_state(steps):
    for factory in FACTORIES:
        env1 = factory(LAT)
        env2 = factory(LAT)
        for trace, r, w in steps:
            assert env1.step(StepKind.ASSIGN, trace, r, w) == \
                env2.step(StepKind.ASSIGN, trace, r, w)
        assert env1.full_state() == env2.full_state()
