"""Hypothesis properties of the misprediction penalty policies.

The documented contract in :mod:`repro.semantics.mitigation`: under the
**local** policy every mitigation level owns its ``Miss`` counter, so a
misprediction at one level never changes the prediction of a block
mitigated at an *incomparable* level (no cross-level timing oracle);
under the **global** policy a single shared counter means any
misprediction anywhere inflates everyone's next prediction.  The diamond
lattice (L <= M1, M2 <= H with M1 || M2) provides the incomparable pair.
"""

from hypothesis import given, strategies as st

from repro.lattice import diamond
from repro.semantics.mitigation import (
    DoublingScheme,
    MitigationState,
    PolynomialScheme,
    make_scheme,
)

DIAMOND = diamond()
M1, M2, H = DIAMOND["M1"], DIAMOND["M2"], DIAMOND["H"]

estimates = st.integers(min_value=1, max_value=1 << 12)
#: Elapsed times big enough to force at least one miss against estimate 1.
overruns = st.lists(
    st.integers(min_value=2, max_value=1 << 16), min_size=1, max_size=8
)
schemes = st.sampled_from([DoublingScheme(), PolynomialScheme(2),
                           PolynomialScheme(1)])


@given(schemes, estimates, estimates, overruns)
def test_local_policy_isolates_incomparable_levels(
    scheme, est_m1, est_m2, elapsed_values
):
    state = MitigationState(scheme=scheme, policy="local")
    before_prediction = state.predict(est_m2, M2)
    before_misses = state.misses(M2)
    for elapsed in elapsed_values:
        state.settle(est_m1, M1, elapsed)
    # Mispredictions at M1 leave the incomparable level M2 untouched.
    assert state.predict(est_m2, M2) == before_prediction
    assert state.misses(M2) == before_misses


@given(schemes, estimates, estimates)
def test_global_policy_couples_incomparable_levels(scheme, est_m1, est_m2):
    state = MitigationState(scheme=scheme, policy="global")
    before = state.predict(est_m2, M2)
    # Overrun the current prediction at M1 to force >= 1 miss.
    state.settle(est_m1, M1, state.predict(est_m1, M1) + 1)
    assert state.misses(M2) > 0
    assert state.predict(est_m2, M2) > before


@given(estimates, st.integers(min_value=0, max_value=12))
def test_local_policy_counts_only_its_own_level(estimate, misses):
    state = MitigationState(policy="local")
    for _ in range(misses):
        state.settle(estimate, H, state.predict(estimate, H) + 1)
    assert state.misses(H) >= misses
    assert state.misses(M1) == 0
    assert state.misses(M2) == 0


@given(st.sampled_from(["doubling", "polynomial"]))
def test_make_scheme_round_trips_names(name):
    scheme = make_scheme(name)
    assert scheme.predict(1, 0) == 1
    # The scheme is monotone in the miss count.
    assert scheme.predict(7, 3) >= scheme.predict(7, 2)
