"""Hypothesis properties over random programs: faithfulness + determinism."""

import random

from hypothesis import given, settings, strategies as st

from repro.lang import DEFAULT_LATTICE
from repro.machine import Memory
from repro.hardware import (
    NoFillHardware,
    NullHardware,
    PartitionedHardware,
    StandardHardware,
    tiny_machine,
)
from repro.semantics import (
    check_adequacy,
    check_sequential_composition,
    check_sleep_accuracy,
    execute,
    run_core,
)
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import infer_labels

LAT = DEFAULT_LATTICE
GAMMA = standard_gamma(LAT)

HARDWARE = [
    lambda: NullHardware(LAT),
    lambda: StandardHardware(LAT, tiny_machine()),
    lambda: NoFillHardware(LAT, tiny_machine()),
    lambda: PartitionedHardware(LAT, tiny_machine()),
]


def generated(seed):
    gen = ProgramGenerator(
        GAMMA, random.Random(seed),
        GeneratorConfig(max_depth=2, max_block_length=3),
    )
    program = gen.program()
    infer_labels(program, GAMMA)
    return program, gen.memory()


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_adequacy_random_programs(seed):
    # Property 1 on every hardware model (adequacy doesn't need security).
    program, memory = generated(seed)
    for factory in HARDWARE:
        assert check_adequacy(program, memory, factory()) == []


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_sequential_composition_random(seed):
    p1, memory = generated(seed)
    p2, _ = generated(seed + 424242)
    for factory in HARDWARE:
        assert check_sequential_composition(p1, p2, memory, factory()) == []


@given(st.lists(st.integers(min_value=-50, max_value=200), min_size=1,
                max_size=5))
@settings(max_examples=30, deadline=None)
def test_sleep_accuracy_random_durations(durations):
    for factory in HARDWARE:
        assert check_sleep_accuracy(durations, factory()) == []


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_full_semantics_deterministic(seed):
    # Property 2 lifted to whole programs: everything about two identical
    # runs coincides.
    program, memory = generated(seed)
    for factory in HARDWARE:
        r1 = execute(program, memory.copy(), factory())
        r2 = execute(program, memory.copy(), factory())
        assert r1.time == r2.time
        assert r1.events == r2.events
        assert r1.memory == r2.memory
        assert (r1.environment.full_state() == r2.environment.full_state())


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_core_and_full_memory_agree(seed):
    program, memory = generated(seed)
    core_mem = run_core(program, memory.copy())
    full = execute(program, memory.copy(), NullHardware(LAT))
    assert core_mem == full.memory


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_event_times_strictly_positive_and_monotone(seed):
    program, memory = generated(seed)
    r = execute(program, memory.copy(),
                PartitionedHardware(LAT, tiny_machine()))
    last = 0
    for event in r.events:
        assert event.time >= last
        last = event.time
    assert last <= r.time
