"""Soundness of the static cycle-cost analyzer on random programs.

The property mirrors the corpus cross-check in ``tests/test_cost.py``
but over *generated* straight-line and bounded-loop programs: for every
hardware model in the registry, the profiler-observed unpadded cycles of
a concrete run must fall inside the static ``[lo, hi]`` interval that
:func:`repro.analysis.cost.compute_cost` derived without running
anything.  All variables are labeled H so no program is rejected by the
type system -- the generator's job is to stress the interpreter's
arithmetic and control flow, not information-flow typing.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.cost import replay_program
from repro.hardware.registry import REGISTRY

NAMES = ("h", "x", "y")

GAMMA = "// gamma: " + ", ".join(f"{n}=H" for n in NAMES + ("i",)) + "\n"

_atoms = st.integers(min_value=0, max_value=15).map(str) | st.sampled_from(
    NAMES
)

_exprs = st.recursive(
    _atoms,
    lambda inner: st.tuples(
        inner, st.sampled_from(["+", "-", "*", "&", "|", "^"]), inner
    ).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
    max_leaves=5,
)

_assign = st.tuples(st.sampled_from(NAMES), _exprs).map(
    lambda t: f"{t[0]} := {t[1]}"
)

_sleep = st.integers(min_value=0, max_value=8).map(lambda n: f"sleep({n})")


def _branch(stmts):
    return st.tuples(_exprs, stmts, stmts).map(
        lambda t: f"if {t[0]} > 0 then {{ {t[1]} }} else {{ {t[2]} }}"
    )


def _bounded_loop(stmts):
    # The counter `i` is written only here, so constant propagation sees
    # the bound and the analyzer unrolls instead of widening.
    return st.tuples(st.integers(min_value=1, max_value=3), stmts).map(
        lambda t: (
            f"i := {t[0]};\n"
            f"while i > 0 do {{ {t[1]};\ni := i - 1 }}"
        )
    )


_stmts = st.recursive(
    _assign | _sleep,
    lambda inner: st.lists(inner, min_size=1, max_size=3)
    .map(lambda body: ";\n".join(body))
    .flatmap(lambda seq: st.just(seq) | _branch(st.just(seq))
             | _bounded_loop(st.just(seq))),
    max_leaves=4,
)

_programs = st.lists(_stmts, min_size=1, max_size=4).map(
    lambda body: GAMMA + ";\n".join(body) + "\n"
)


@settings(max_examples=25)
@given(source=_programs)
def test_observed_cycles_within_static_interval(source):
    for hardware in REGISTRY.names():
        check = replay_program(source, hardware=hardware)
        assert check.status == "checked", (hardware, check.reason, source)
        assert not check.violations, (hardware, check.violations, source)
        assert any(o.region == "<program>" for o in check.observations)
