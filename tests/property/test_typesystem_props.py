"""Hypothesis properties of the type system and label inference."""

import random

from hypothesis import given, settings, strategies as st

from repro.lang import DEFAULT_LATTICE, ast, labeled_commands
from repro.lattice import chain, diamond
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import TypeChecker, infer_labels, typecheck

LATTICES = {
    "two": DEFAULT_LATTICE,
    "chain": chain(("L", "M", "H")),
    "diamond": diamond(),
}


def generated(lattice_name, seed, **cfg):
    lattice = LATTICES[lattice_name]
    gamma = standard_gamma(lattice)
    gen = ProgramGenerator(
        gamma, random.Random(seed),
        GeneratorConfig(max_depth=2, max_block_length=3, **cfg),
    )
    program = gen.program()
    infer_labels(program, gamma)
    return program, gamma, lattice


lattice_names = st.sampled_from(sorted(LATTICES))
seeds = st.integers(min_value=0, max_value=100_000)


@given(lattice_names, seeds)
@settings(max_examples=100, deadline=None)
def test_generated_programs_typecheck(lattice_name, seed):
    program, gamma, _ = generated(lattice_name, seed)
    typecheck(program, gamma)  # must not raise


@given(lattice_names, seeds)
@settings(max_examples=60, deadline=None)
def test_inference_is_fully_annotating(lattice_name, seed):
    program, gamma, _ = generated(lattice_name, seed)
    for cmd in labeled_commands(program):
        assert cmd.read_label is not None
        assert cmd.write_label is not None
        assert cmd.read_label == cmd.write_label  # cache-usable choice


@given(lattice_names, seeds)
@settings(max_examples=60, deadline=None)
def test_pc_flows_to_write_label_everywhere(lattice_name, seed):
    # The derivation invariant behind Property 5's usefulness.
    program, gamma, lattice = generated(lattice_name, seed)
    info = typecheck(program, gamma)
    for cmd in labeled_commands(program):
        ctx = info.node_contexts[cmd.node_id]
        assert ctx.pc.flows_to(cmd.write_label)


@given(lattice_names, seeds)
@settings(max_examples=60, deadline=None)
def test_timing_labels_monotone(lattice_name, seed):
    # Every rule enforces start <= end.
    program, gamma, lattice = generated(lattice_name, seed)
    info = typecheck(program, gamma)
    for cmd in labeled_commands(program):
        ctx = info.node_contexts[cmd.node_id]
        assert ctx.start.flows_to(ctx.end)


@given(lattice_names, seeds)
@settings(max_examples=60, deadline=None)
def test_mitigate_levels_bound_bodies(lattice_name, seed):
    program, gamma, lattice = generated(lattice_name, seed)
    info = typecheck(program, gamma)
    for cmd in labeled_commands(program):
        if isinstance(cmd, ast.Mitigate):
            assert cmd.mit_id in info.mitigate_pc
            assert info.mitigate_level[cmd.mit_id] == cmd.level


@given(lattice_names, seeds)
@settings(max_examples=40, deadline=None)
def test_checking_is_deterministic(lattice_name, seed):
    program, gamma, _ = generated(lattice_name, seed)
    info1 = typecheck(program, gamma)
    info2 = typecheck(program, gamma)
    assert info1.end_label == info2.end_label
    assert info1.mitigate_pc == info2.mitigate_pc


@given(lattice_names, seeds)
@settings(max_examples=40, deadline=None)
def test_raising_initial_pc_only_restricts(lattice_name, seed):
    # If a program checks under pc = p, it checks under any pc' <= p.
    program, gamma, lattice = generated(lattice_name, seed)
    checker = TypeChecker(gamma)
    checker.run(program, pc=lattice.bottom)
    # Generated programs are built for bottom pc; re-checking with bottom
    # start label but the same pc must agree.
    info = checker.run(program, pc=lattice.bottom, start=lattice.bottom)
    assert info.end_label is not None
