"""Hypothesis properties of automatic mitigate placement."""

import random

from hypothesis import given, settings, strategies as st

from repro.lang import DEFAULT_LATTICE, ast
from repro.machine import Memory
from repro.semantics import run_core
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import (
    TypingError,
    UnmitigatableError,
    auto_mitigate,
    infer_labels,
    typecheck,
)

LAT = DEFAULT_LATTICE
GAMMA = standard_gamma(LAT)


def _leaky_program(seed):
    """A random high-activity block followed by a public assignment --
    usually ill-typed at the public write."""
    gen = ProgramGenerator(
        GAMMA, random.Random(seed),
        GeneratorConfig(max_depth=2, max_block_length=3,
                        allow_mitigate=False),
    )
    program = ast.seq(
        gen.program(),
        ast.Assign(target="l0", expr=ast.IntLit(7)),
        gen.program(),
        ast.Assign(target="l1", expr=ast.IntLit(9)),
    )
    infer_labels(program, GAMMA)
    return program, gen


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=50, deadline=None)
def test_repair_always_yields_welltyped(seed):
    program, _ = _leaky_program(seed)
    try:
        typecheck(program, GAMMA)
        return  # already fine; nothing to check
    except TypingError:
        pass
    try:
        fixed, placements = auto_mitigate(program, GAMMA)
    except UnmitigatableError:
        return  # non-timing error (possible but rare for this family)
    typecheck(fixed, GAMMA)  # must not raise
    assert placements


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_repair_preserves_core_semantics(seed):
    program, gen = _leaky_program(seed)
    memory = gen.memory()
    reference = run_core(program, memory.copy(), max_steps=500_000)
    try:
        fixed, _ = auto_mitigate(program, GAMMA)
    except (TypingError, UnmitigatableError):
        return
    repaired = run_core(fixed, memory.copy(), max_steps=500_000)
    assert reference == repaired


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=30, deadline=None)
def test_repair_is_idempotent(seed):
    program, _ = _leaky_program(seed)
    try:
        fixed, first = auto_mitigate(program, GAMMA)
    except (TypingError, UnmitigatableError):
        return
    again, second = auto_mitigate(fixed, GAMMA)
    assert second == []  # a repaired program needs no further repair


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=50, deadline=None)
def test_placements_land_on_timing_tainted_nodes(seed):
    """Every auto-mitigate placement wraps at least one command the
    timing-dependence graph marks as timing-relevant: either its own
    duration varies with confidential data, or confidential data already
    taints its start time.  (The TDG is built BEFORE the repair mutates
    the program; wrapped commands keep their node_ids.)"""
    from repro.analysis.flows import build_tdg

    program, _ = _leaky_program(seed)
    try:
        typecheck(program, GAMMA)
        return
    except TypingError:
        pass
    tdg = build_tdg(program, GAMMA)
    try:
        _, placements = auto_mitigate(program, GAMMA)
    except UnmitigatableError:
        return
    for placement in placements:
        nodes = [
            sub.node_id
            for cmd in placement.wrapped
            for sub in cmd.walk()
            if isinstance(sub, ast.LabeledCommand)
        ]
        assert nodes
        assert any(
            tdg.contributes_timing(node) or tdg.timing_tainted(node)
            for node in nodes
        ), f"placement {placement.describe()} wraps no timing-tainted node"
