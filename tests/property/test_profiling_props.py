"""Profiler attribution invariants on random mitigate-heavy programs.

The profiler (``repro.telemetry.profiling``) is a *second*, independent
observer of the same execution the span recorder watches, so their
accounts of where simulated time went must reconcile exactly:

* every simulated cycle the interpreter spends is attributed to exactly
  one subsystem -- hardware access, explicit sleep, or mitigation
  padding -- so the profiler's total equals the final global clock;
* the span recorder's run spans cover the same interval, so the summed
  run-span durations equal the profiler total too;
* ``interpreter.dispatch`` carries wall time but zero cycles (dispatch
  is bookkeeping; simulated time only advances through charged steps);
* with profiling off the interpreter resolves the profiler to ``None``
  up front, and results are bit-identical to an unprofiled run.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.lang import DEFAULT_LATTICE
from repro.hardware import PartitionedHardware, tiny_machine
from repro.semantics.full import execute
from repro.semantics.mitigation import MitigationState
from repro.telemetry import Profiler, SpanRecorder
from repro.telemetry.spans import CATEGORY_RUN
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import TypingError, infer_labels, typecheck

LAT = DEFAULT_LATTICE

MITIGATE_HEAVY = GeneratorConfig(
    max_depth=3,
    max_block_length=3,
    weights={
        "assign": 0.30,
        "skip": 0.05,
        "sleep": 0.15,
        "if": 0.15,
        "while": 0.10,
        "mitigate": 0.25,
    },
)

CYCLE_SUBSYSTEMS = (
    "hardware.", "interpreter.sleep", "mitigation.padding",
)


def _generated(lattice, seed):
    gamma = standard_gamma(lattice)
    gen = ProgramGenerator(gamma, random.Random(seed), MITIGATE_HEAVY)
    program = gen.program()
    infer_labels(program, gamma)
    try:
        info = typecheck(program, gamma)
    except TypingError:
        return None
    return program, gamma, info, gen


def _run(program, info, memory, profiler=None, recorder=None):
    return execute(
        program,
        memory,
        PartitionedHardware(LAT, tiny_machine()),
        mitigation=MitigationState(),
        mitigate_pc=info.mitigate_pc,
        recorder=recorder,
        profiler=profiler,
    )


@given(st.integers(min_value=0, max_value=50_000))
@settings(max_examples=30, deadline=None)
def test_profiler_cycles_reconcile_with_spans(seed):
    generated = _generated(LAT, seed)
    if generated is None:
        return
    program, gamma, info, gen = generated
    profiler = Profiler()
    recorder = SpanRecorder()
    result = _run(program, info, gen.memory(),
                  profiler=profiler, recorder=recorder)

    # Attribution is a partition of simulated time: the subsystem totals
    # sum to the final clock, with no double counting and no gaps.
    assert profiler.total_cycles() == result.time, (
        profiler.cycles, result.time,
    )

    # ...and the span recorder, watching the same run through the other
    # telemetry seam, saw the same interval.
    run_spans = [s for s in recorder.spans if s.category == CATEGORY_RUN]
    assert sum(s.duration for s in run_spans) == profiler.total_cycles()

    # Only charged steps, sleeps, and padding may carry cycles.
    for name, cycles in profiler.cycles.items():
        assert cycles >= 0
        if cycles:
            assert name.startswith(CYCLE_SUBSYSTEMS), (name, cycles)

    # Dispatch is pure bookkeeping: wall time, never simulated cycles.
    assert profiler.cycles.get("interpreter.dispatch", 0) == 0


@given(st.integers(min_value=0, max_value=50_000))
@settings(max_examples=15, deadline=None)
def test_profiling_off_is_transparent(seed):
    generated = _generated(LAT, seed)
    if generated is None:
        return
    program, gamma, info, gen = generated
    base = gen.memory()

    plain = _run(program, info, base.copy())
    profiled = _run(program, info, base.copy(), profiler=Profiler())
    inactive = Profiler()
    inactive.active = False
    off = _run(program, info, base.copy(), profiler=inactive)

    assert plain.time == profiled.time == off.time
    assert plain.steps == profiled.steps == off.steps
    # An inactive profiler is resolved to None before the hot loop and
    # must never be written to.
    assert not inactive.cycles and not inactive.wall_ns
