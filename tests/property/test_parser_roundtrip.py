"""Hypothesis properties: pretty-printer / parser round trips."""

from hypothesis import given, settings, strategies as st

from repro.lang import DEFAULT_LATTICE, ast, ast_equal, parse, parse_expr
from repro.lang.pretty import pretty, pretty_expr

LAT = DEFAULT_LATTICE

names = st.sampled_from(["x", "y", "z", "foo", "a1", "count"])
array_names = st.sampled_from(["arr", "buf", "table"])
labels = st.one_of(st.none(), st.sampled_from(list(LAT.levels())))


def exprs(depth=3):
    base = st.one_of(
        st.integers(min_value=0, max_value=1000).map(ast.IntLit),
        names.map(ast.Var),
    )
    if depth == 0:
        return base

    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(
            lambda op, l, r: ast.BinOp(op=op, left=l, right=r),
            st.sampled_from(ast.BINARY_OPS),
            sub,
            sub,
        ),
        st.builds(
            lambda op, e: ast.UnOp(op=op, operand=e),
            st.sampled_from(ast.UNARY_OPS),
            sub,
        ),
        st.builds(
            lambda a, i: ast.ArrayRead(array=a, index=i), array_names, sub
        ),
    )


def commands(depth=2):
    simple = st.one_of(
        st.builds(lambda r, w: ast.Skip(read_label=r, write_label=w),
                  labels, labels),
        st.builds(
            lambda t, e, r, w: ast.Assign(
                target=t, expr=e, read_label=r, write_label=w
            ),
            names, exprs(2), labels, labels,
        ),
        st.builds(
            lambda a, i, e: ast.ArrayAssign(array=a, index=i, expr=e),
            array_names, exprs(1), exprs(1),
        ),
        st.builds(lambda e: ast.Sleep(duration=e), exprs(2)),
    )
    if depth == 0:
        return simple
    sub = commands(depth - 1)
    seq = st.builds(lambda a, b: ast.Seq(first=a, second=b), sub, sub)
    compound = st.one_of(
        st.builds(
            lambda c, t, e: ast.If(cond=c, then_branch=t, else_branch=e),
            exprs(1), sub, sub,
        ),
        st.builds(lambda c, b: ast.While(cond=c, body=b), exprs(1), sub),
        st.builds(
            lambda e, b: ast.Mitigate(budget=e, level=LAT["H"], body=b),
            exprs(1), sub,
        ),
    )
    return st.one_of(simple, seq, compound)


@given(exprs())
@settings(max_examples=200)
def test_expr_roundtrip(expr):
    assert ast_equal(parse_expr(pretty_expr(expr)), expr)


@given(commands())
@settings(max_examples=200)
def test_command_roundtrip(cmd):
    assert ast_equal(parse(pretty(cmd)), cmd)


@given(commands())
@settings(max_examples=50)
def test_pretty_is_stable(cmd):
    once = pretty(cmd)
    twice = pretty(parse(once))
    assert once == twice


@given(commands())
@settings(max_examples=100)
def test_roundtrip_modulo_node_id_and_span(cmd):
    # Built ASTs carry synthetic spans and their own node ids; reparsing
    # the pretty form produces fresh ids and *real* source positions, yet
    # the two trees are structurally equal.
    reparsed = parse(pretty(cmd))
    assert ast_equal(reparsed, cmd)
    for node in ast.labeled_commands(reparsed):
        assert not node.span.is_synthetic
        assert node.span.line >= 1 and node.span.column >= 1


@given(exprs())
@settings(max_examples=100)
def test_parsed_expressions_have_real_spans(expr):
    reparsed = parse_expr(pretty_expr(expr))
    assert not reparsed.span.is_synthetic
    assert reparsed.span.end_column > reparsed.span.column \
        or reparsed.span.end_line > reparsed.span.line
