"""Algebraic edge cases of the ``Interval`` cost domain.

The quantitative census (``repro.analysis.quantify``) leans on three
interval facts the unit corpus only spot-checks: ⊤ (``hi=None``) is
absorbing under both ``+`` and ``join``, empty/degenerate intervals are
handled as impossible regions (never distinguishable from anything), and
``distinguishable`` is symmetric at every resolution.  Hypothesis sweeps
them over the whole small-integer grid.
"""

from hypothesis import given, strategies as st

from repro.hardware.costmodel import Interval

_bounds = st.integers(min_value=-64, max_value=64)

# Any interval, including empty (lo > hi) and ⊤ (hi=None).
_intervals = st.tuples(_bounds, _bounds | st.none()).map(
    lambda t: Interval(t[0], t[1])
)

# Non-empty intervals only: lo <= hi, or unbounded.
_proper = st.tuples(_bounds, st.integers(min_value=0, max_value=64)
                    | st.none()).map(
    lambda t: Interval(t[0], None if t[1] is None else t[0] + t[1])
)

_resolutions = st.integers(min_value=-2, max_value=16)


@given(iv=_intervals)
def test_top_absorbs_under_add(iv):
    top = Interval.top()
    assert (iv + top).hi is None
    assert (top + iv).hi is None
    assert (iv + top).lo == iv.lo + top.lo


@given(iv=_intervals)
def test_top_absorbs_under_join(iv):
    top = Interval.top(lo=-64)
    joined = iv.join(top)
    assert joined.hi is None
    assert joined.lo == min(iv.lo, top.lo)
    assert iv.join(top) == top.join(iv)


@given(a=_intervals, b=_intervals)
def test_join_contains_both(a, b):
    joined = a.join(b)
    assert joined.lo <= min(a.lo, b.lo)
    if joined.hi is not None:
        assert a.hi is not None and b.hi is not None
        assert joined.hi >= max(a.hi, b.hi)


@given(a=_intervals, b=_intervals, resolution=_resolutions)
def test_distinguishable_is_symmetric(a, b, resolution):
    assert a.distinguishable(b, resolution) == b.distinguishable(
        a, resolution
    )


@given(a=_intervals, resolution=_resolutions)
def test_empty_interval_never_distinguishable(a, resolution):
    empty = Interval(5, 1)
    assert empty.empty
    assert not empty.distinguishable(a, resolution)
    assert not a.distinguishable(empty, resolution)


@given(a=_proper, resolution=_resolutions)
def test_interval_not_distinguishable_from_itself(a, resolution):
    assert not a.distinguishable(a, resolution)


@given(a=_proper, b=_proper, resolution=_resolutions)
def test_distinguishable_implies_disjoint_with_gap(a, b, resolution):
    if a.distinguishable(b, resolution):
        assert a.disjoint_from(b)
        assert a.gap(b) >= max(resolution, 1)
    # Overlapping intervals are never distinguishable.
    if not a.disjoint_from(b):
        assert not a.distinguishable(b, resolution)


@given(value=_bounds)
def test_degenerate_point_interval(value):
    point = Interval.exact(value)
    assert point.is_exact and not point.empty
    assert point.contains(value)
    assert not point.distinguishable(point)
    # A point one resolution step away is distinguishable at 1 but the
    # separation must clear coarser resolutions.
    neighbor = Interval.exact(value + 2)
    assert point.distinguishable(neighbor, resolution=1)
    assert point.distinguishable(neighbor, resolution=2)
    assert not point.distinguishable(neighbor, resolution=3)
