"""Lemma 1 (low-determinism of mitigate commands) on random programs.

For well-typed programs, the *identity* sequence of low-context mitigate
commands is the same across all runs from memories that agree outside the
varied high levels; only durations differ.  The paper uses this to make
Definition 2's variation sets well-defined; here hypothesis hunts for a
counterexample across randomly generated mitigate-heavy programs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.lang import DEFAULT_LATTICE
from repro.lattice import chain
from repro.machine.layout import Layout
from repro.hardware import NullHardware, PartitionedHardware, tiny_machine
from repro.quantitative import check_low_determinism, timing_variations
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import TypingError, infer_labels, typecheck

LAT = DEFAULT_LATTICE

MITIGATE_HEAVY = GeneratorConfig(
    max_depth=3,
    max_block_length=3,
    weights={
        "assign": 0.30,
        "skip": 0.05,
        "sleep": 0.15,
        "if": 0.15,
        "while": 0.10,
        "mitigate": 0.25,
    },
)


def _generated(lattice, seed):
    gamma = standard_gamma(lattice)
    gen = ProgramGenerator(gamma, random.Random(seed), MITIGATE_HEAVY)
    program = gen.program()
    infer_labels(program, gamma)
    try:
        info = typecheck(program, gamma)
    except TypingError:
        return None
    return program, gamma, info, gen


@given(st.integers(min_value=0, max_value=50_000),
       st.sampled_from(["two", "chain"]))
@settings(max_examples=40, deadline=None)
def test_lemma1_low_determinism(seed, lattice_name):
    lattice = LAT if lattice_name == "two" else chain(("L", "M", "H"))
    generated = _generated(lattice, seed)
    if generated is None:
        return
    program, gamma, info, gen = generated
    base = gen.memory()
    variants = []
    for k in range(6):
        variant = base.copy()
        for name in gamma:
            if not gamma[name].flows_to(lattice.bottom):
                variant.write(name, (k * 7 + hash(name)) % 8)
        variants.append(variant)
    violations = check_low_determinism(
        program, lattice, [lattice.top], lattice.bottom, base,
        NullHardware(lattice), variants, mitigate_pc=info.mitigate_pc,
    )
    assert violations == [], violations


@given(st.integers(min_value=0, max_value=50_000))
@settings(max_examples=25, deadline=None)
def test_theorem2_on_random_mitigated_programs(seed):
    generated = _generated(LAT, seed)
    if generated is None:
        return
    program, gamma, info, gen = generated
    base = gen.memory()
    variants = []
    for k in range(8):
        variant = base.copy()
        for name in gamma:
            if not gamma[name].flows_to(LAT["L"]):
                variant.write(name, (k * 3 + len(name)) % 6)
        variants.append(variant)
    from repro.quantitative import verify_theorem2

    result = verify_theorem2(
        program, gamma, LAT, [LAT["H"]], LAT["L"], base,
        PartitionedHardware(LAT, tiny_machine()), variants,
        mitigate_pc=info.mitigate_pc,
    )
    assert result.holds, str(result)
