"""Telemetry invariants on random mitigate-heavy programs.

The recorder layer is passive, so everything it reports must be *derivable*
from the semantics it watched.  Hypothesis hunts for a generated program
that breaks one of the accounting identities:

* ``Miss[l]`` only ever steps upward (S-UPDATE never decrements), so every
  recorded ``miss_trace`` series is monotone non-decreasing;
* padding is never negative (a mitigate block is padded *to* its
  prediction, never shortened);
* the final clock splits exactly into machine cycles + sleep cycles +
  padding cycles -- nothing else may advance time;
* the dynamic Theorem 2 accounting (distinct relevant deadline sequences
  over low-equivalent memories) stays within the static bound.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.lang import DEFAULT_LATTICE
from repro.hardware import PartitionedHardware, tiny_machine
from repro.semantics.full import execute
from repro.semantics.mitigation import MitigationState
from repro.telemetry import DynamicLeakageMeter, RecordingTraceRecorder
from repro.testing import GeneratorConfig, ProgramGenerator, standard_gamma
from repro.typesystem import TypingError, infer_labels, typecheck

LAT = DEFAULT_LATTICE

MITIGATE_HEAVY = GeneratorConfig(
    max_depth=3,
    max_block_length=3,
    weights={
        "assign": 0.30,
        "skip": 0.05,
        "sleep": 0.15,
        "if": 0.15,
        "while": 0.10,
        "mitigate": 0.25,
    },
)


def _generated(lattice, seed):
    gamma = standard_gamma(lattice)
    gen = ProgramGenerator(gamma, random.Random(seed), MITIGATE_HEAVY)
    program = gen.program()
    infer_labels(program, gamma)
    try:
        info = typecheck(program, gamma)
    except TypingError:
        return None
    return program, gamma, info, gen


@given(st.integers(min_value=0, max_value=50_000))
@settings(max_examples=30, deadline=None)
def test_telemetry_accounting_invariants(seed):
    generated = _generated(LAT, seed)
    if generated is None:
        return
    program, gamma, info, gen = generated
    recorder = RecordingTraceRecorder()
    result = execute(
        program,
        gen.memory(),
        PartitionedHardware(LAT, tiny_machine()),
        mitigation=MitigationState(),
        mitigate_pc=info.mitigate_pc,
        recorder=recorder,
    )
    reg = recorder.registry

    # Miss[l] transitions (S-UPDATE) only ever count upward.
    for name, series in reg.series.items():
        if name.startswith("miss_trace."):
            assert all(a <= b for a, b in zip(series, series[1:])), (
                name, series,
            )

    # Padding stretches a block to its prediction; it can never be negative.
    assert reg.padding_cycles() >= 0
    for padding in reg.histograms.get("hist.mitigation.padding", {}):
        assert padding >= 0

    # The clock advances only through charged steps, sleeps, and padding.
    split = (reg.machine_cycles() + reg.counter("cycles.sleep")
             + reg.padding_cycles())
    assert split == result.time, (
        f"clock split {split} != final time {result.time}"
    )
    assert reg.final_cycles() == result.time
    assert reg.counter("mitigation.completions") == len(result.mitigations)


@given(st.integers(min_value=0, max_value=50_000))
@settings(max_examples=25, deadline=None)
def test_dynamic_leakage_within_static_bound(seed):
    generated = _generated(LAT, seed)
    if generated is None:
        return
    program, gamma, info, gen = generated
    base = gen.memory()
    variants = [base]
    for k in range(8):
        variant = base.copy()
        for name in gamma:
            if not gamma[name].flows_to(LAT["L"]):
                variant.write(name, (k * 5 + len(name)) % 7)
        variants.append(variant)

    # One long-lived meter across all runs; each execute() closes one
    # observed deadline sequence (Lemma 1 makes their *identities* agree
    # across the low-equivalent variants, so only durations can differ).
    meter = DynamicLeakageMeter(LAT)
    recorder = RecordingTraceRecorder(meter=meter)
    for variant in variants:
        execute(
            program,
            variant.copy(),
            PartitionedHardware(LAT, tiny_machine()),
            mitigation=MitigationState(),
            mitigate_pc=info.mitigate_pc,
            recorder=recorder,
        )
    assert meter.runs == len(variants)
    assert meter.observed_variations >= 1
    meter.assert_within_bound()
