"""Hypothesis properties: lattice laws on the builtin lattices."""

from hypothesis import given, settings, strategies as st

from repro.lattice import chain, diamond, powerset, two_point

LATTICES = [
    two_point(),
    chain(("L", "M", "H")),
    chain(("a", "b", "c", "d", "e")),
    diamond(),
    powerset(["p", "q", "r"]),
]

lattice_st = st.sampled_from(LATTICES)


@st.composite
def lattice_and_labels(draw, n=2):
    lat = draw(lattice_st)
    labels = [draw(st.sampled_from(lat.levels())) for _ in range(n)]
    return (lat, *labels)


@given(lattice_and_labels(2))
def test_join_is_upper_bound(args):
    lat, a, b = args
    j = lat.join(a, b)
    assert lat.leq(a, j) and lat.leq(b, j)


@given(lattice_and_labels(2))
def test_meet_is_lower_bound(args):
    lat, a, b = args
    m = lat.meet(a, b)
    assert lat.leq(m, a) and lat.leq(m, b)


@given(lattice_and_labels(3))
def test_join_least(args):
    lat, a, b, c = args
    if lat.leq(a, c) and lat.leq(b, c):
        assert lat.leq(lat.join(a, b), c)


@given(lattice_and_labels(3))
def test_meet_greatest(args):
    lat, a, b, c = args
    if lat.leq(c, a) and lat.leq(c, b):
        assert lat.leq(c, lat.meet(a, b))


@given(lattice_and_labels(2))
def test_commutativity(args):
    lat, a, b = args
    assert lat.join(a, b) == lat.join(b, a)
    assert lat.meet(a, b) == lat.meet(b, a)


@given(lattice_and_labels(3))
def test_associativity(args):
    lat, a, b, c = args
    assert lat.join(lat.join(a, b), c) == lat.join(a, lat.join(b, c))
    assert lat.meet(lat.meet(a, b), c) == lat.meet(a, lat.meet(b, c))


@given(lattice_and_labels(2))
def test_absorption(args):
    lat, a, b = args
    assert lat.join(a, lat.meet(a, b)) == a
    assert lat.meet(a, lat.join(a, b)) == a


@given(lattice_and_labels(1))
def test_idempotence_and_bounds(args):
    lat, a = args
    assert lat.join(a, a) == a
    assert lat.meet(a, a) == a
    assert lat.leq(lat.bottom, a)
    assert lat.leq(a, lat.top)


@given(lattice_and_labels(3))
def test_transitivity(args):
    lat, a, b, c = args
    if lat.leq(a, b) and lat.leq(b, c):
        assert lat.leq(a, c)


@given(lattice_and_labels(2))
def test_antisymmetry(args):
    lat, a, b = args
    if lat.leq(a, b) and lat.leq(b, a):
        assert a == b


@given(lattice_and_labels(1), st.data())
def test_upward_closure_is_closed(args, data):
    lat, a = args
    subset = data.draw(
        st.sets(st.sampled_from(lat.levels()), max_size=len(lat))
    )
    closure = lat.upward_closure(subset)
    for level in closure:
        for above in lat.levels():
            if lat.leq(level, above):
                assert above in closure


@given(lattice_and_labels(1), st.data())
def test_exclude_observable_correct(args, data):
    lat, adversary = args
    subset = data.draw(
        st.sets(st.sampled_from(lat.levels()), max_size=len(lat))
    )
    excluded = lat.exclude_observable(subset, adversary)
    assert all(not lat.leq(l, adversary) for l in excluded)
    assert excluded <= frozenset(subset)
