"""The perf-trajectory harness (src/repro/telemetry/bench.py, `repro bench`).

Covers the BENCH document machinery (schema stamping, validation), the
regression comparator (including the acceptance criterion: a synthetic
>=20% per-subsystem slowdown must trip a nonzero exit), the measured
core/service suites on shrunken workloads, and the committed repo-root
baselines the CI gate compares against.
"""

import json
import os

import pytest

from repro.cli import main
from repro.telemetry.bench import (
    BenchError,
    DEFAULT_TOLERANCE,
    SCHEMA,
    compare_documents,
    load_bench_document,
    make_entry,
    measure_seam_overhead,
    run_core_bench,
    run_service_bench,
    write_bench_document,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _doc(entries, kind="core"):
    return {"schema": SCHEMA, "kind": kind, "config": {}, "entries": entries}


def _entry(rate, cycles=1000):
    return make_entry(cycles, cycles / rate, 1)


class TestDocuments:
    def test_write_stamps_schema_and_roundtrips(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        write_bench_document(path, {"kind": "core",
                                    "entries": {"a": _entry(1e6)}})
        doc = load_bench_document(path)
        assert doc["schema"] == SCHEMA
        assert doc["entries"]["a"]["cycles"] == 1000

    def test_load_rejects_bad_input(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        with pytest.raises(BenchError, match="cannot read"):
            load_bench_document(missing)
        garbled = tmp_path / "bad.json"
        garbled.write_text("{not json")
        with pytest.raises(BenchError, match="not valid JSON"):
            load_bench_document(str(garbled))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "other/9", "entries": {}}))
        with pytest.raises(BenchError, match="not a repro.bench/1"):
            load_bench_document(str(wrong))
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(BenchError, match="entries"):
            load_bench_document(str(empty))


class TestCompare:
    def test_within_tolerance_is_ok(self):
        base = _doc({"a": _entry(1.00e6)})
        cur = _doc({"a": _entry(0.90e6)})  # 10% slower, tolerance 20%
        comparison = compare_documents(cur, base)
        assert comparison["ok"]
        assert comparison["tolerance"] == DEFAULT_TOLERANCE
        (row,) = [r for r in comparison["rows"] if r["key"] == "a"]
        assert row["status"] == "ok"

    def test_twenty_percent_slowdown_regresses(self):
        # The acceptance criterion: inject a >=20% per-subsystem slowdown
        # and the gate must report a regression.
        base = _doc({
            "subsystem/hardware.partitioned": _entry(1.00e6),
            "subsystem/interpreter.dispatch": make_entry(0, 0.001, 1),
        })
        cur = _doc({
            "subsystem/hardware.partitioned": _entry(0.75e6),
            "subsystem/interpreter.dispatch": make_entry(0, 0.001, 1),
        })
        comparison = compare_documents(cur, base)
        assert not comparison["ok"]
        assert comparison["regressions"] == [
            "subsystem/hardware.partitioned"
        ]

    def test_missing_baseline_key_regresses_and_new_key_informs(self):
        base = _doc({"a": _entry(1e6), "gone": _entry(1e6)})
        cur = _doc({"a": _entry(1e6), "fresh": _entry(1e6)})
        comparison = compare_documents(cur, base)
        assert not comparison["ok"]
        statuses = {r["key"]: r["status"] for r in comparison["rows"]}
        assert statuses["gone"] == "missing"
        assert statuses["fresh"] == "new"

    def test_rate_less_entries_are_informational(self):
        base = _doc({"a": make_entry(0, 0.001, 1)})
        cur = _doc({"a": make_entry(0, 0.010, 1)})  # 10x wall, no rate
        comparison = compare_documents(cur, base)
        assert comparison["ok"]
        assert comparison["rows"][0]["status"] == "info"


class TestCoreSuite:
    @pytest.fixture(scope="class")
    def quick_doc(self):
        return run_core_bench(
            repeats=1, password_length=6, sbox_length=8, rsa_bits=8,
            rsa_blocks=1, gateway_requests=6, check_overhead=False,
        )

    def test_document_shape(self, quick_doc):
        assert quick_doc["schema"] == SCHEMA
        assert quick_doc["kind"] == "core"
        keys = set(quick_doc["entries"])
        assert {"program/password/mitigated", "program/password/unmitigated",
                "program/sbox/mitigated", "program/rsa/language",
                "gateway/serve", "gateway/handlers"} <= keys
        assert "subsystem/hardware.partitioned" in keys
        assert "subsystem/mitigation.padding" in keys

    def test_every_registered_model_is_probed(self, quick_doc):
        from repro.hardware import REGISTRY

        probed = {k.split("/", 1)[1] for k in quick_doc["entries"]
                  if k.startswith("hardware/")}
        assert probed == {spec.name for spec in REGISTRY.specs()}
        for key in sorted(quick_doc["entries"]):
            if key.startswith("hardware/"):
                meta = quick_doc["entries"][key]["meta"]
                assert isinstance(meta["expected_secure"], bool)

    def test_measured_entries_carry_rates(self, quick_doc):
        entry = quick_doc["entries"]["program/password/mitigated"]
        assert entry["cycles"] > 0
        assert entry["wall_s"] > 0
        assert entry["cycles_per_sec"] == pytest.approx(
            entry["cycles"] / entry["wall_s"], rel=1e-6
        )

    def test_seam_overhead_measurement(self):
        overhead = measure_seam_overhead(repeats=3, length=8)
        assert set(overhead) >= {"with_seam_s", "seamless_s",
                                 "overhead_pct", "tolerance_pct", "ok"}
        assert overhead["with_seam_s"] > 0
        assert overhead["seamless_s"] > 0


class TestServiceSuite:
    def test_quick_sweep_document(self):
        doc = run_service_bench(requests=12, client_counts=(3,),
                                policies=("fifo",))
        assert doc["kind"] == "service"
        entry = doc["entries"]["service/fifo/c3"]
        assert entry["meta"]["audit_ok"] is True
        assert entry["meta"]["completed"] > 0
        assert entry["meta"]["latency_p50"] <= entry["meta"]["latency_p99"]


class TestCommittedBaselines:
    def test_repo_root_baselines_are_valid(self):
        for kind in ("core", "service"):
            path = os.path.join(REPO_ROOT, f"BENCH_{kind}.json")
            assert os.path.exists(path), (
                f"{path} is the committed perf baseline; regenerate with "
                f"`repro bench` (docs/PROFILING.md)"
            )
            doc = load_bench_document(path)
            assert doc["kind"] == kind
            assert doc["entries"]


class TestCli:
    def _write(self, tmp_path, name, entries):
        path = str(tmp_path / name)
        write_bench_document(path, _doc(entries))
        return path

    def test_compare_identical_documents_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"a": _entry(1e6)})
        rc = main(["bench", "--compare", base, "--current", base])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_slowdown_exits_one(self, tmp_path, capsys):
        # Acceptance criterion, end to end: a synthetic >=20% slowdown in
        # one subsystem entry flips the exit code.
        base = self._write(tmp_path, "base.json", {
            "subsystem/hardware.partitioned": _entry(1.00e6),
            "program/password/mitigated": _entry(2.00e6),
        })
        cur = self._write(tmp_path, "cur.json", {
            "subsystem/hardware.partitioned": _entry(0.75e6),
            "program/password/mitigated": _entry(2.00e6),
        })
        rc = main(["bench", "--compare", base, "--current", cur])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "subsystem/hardware.partitioned" in out

    def test_bad_inputs_exit_two(self, tmp_path, capsys):
        ok = self._write(tmp_path, "ok.json", {"a": _entry(1e6)})
        assert main(["bench", "--compare",
                     str(tmp_path / "nope.json"), "--current", ok]) == 2
        assert main(["bench", "--current", ok]) == 2
        capsys.readouterr()

    def test_quick_measurement_writes_documents(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        rc = main(["bench", "--suite", "core", "--quick", "--repeats", "1",
                   "--output-dir", out_dir])
        assert rc == 0
        doc = load_bench_document(os.path.join(out_dir, "BENCH_core.json"))
        assert doc["kind"] == "core"
        # --quick skips the noise-sensitive seam-overhead measurement.
        assert "overhead" not in doc
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_mismatched_suite_and_baseline_exit_two(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_service.json")
        write_bench_document(path, _doc({"a": _entry(1e6)},
                                        kind="service"))
        rc = main(["bench", "--suite", "core", "--quick", "--repeats", "1",
                   "--output-dir", str(tmp_path / "out2"),
                   "--compare", path])
        assert rc == 2
        assert "kind='service'" in capsys.readouterr().err
