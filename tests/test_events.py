"""Unit tests for the events module (observations and mitigate vectors)."""

import pytest

from repro.lang import DEFAULT_LATTICE
from repro.semantics.events import (
    Event,
    MitigationRecord,
    mitigation_ids,
    mitigation_times,
    observable_events,
    observation_key,
    project_mitigations,
)

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]


def records():
    return (
        MitigationRecord("a", H, 0, 10, pc_label=L),
        MitigationRecord("b", H, 10, 25, pc_label=H),
        MitigationRecord("c", L, 25, 30, pc_label=L),
        MitigationRecord("d", H, 30, 50, pc_label=None),
    )


class TestEvent:
    def test_location_scalar(self):
        assert Event("x", 1, 5).location() == "x"

    def test_location_array(self):
        assert Event("a", 1, 5, index=3).location() == "a[3]"

    def test_str(self):
        assert str(Event("x", 7, 42)) == "(x, 7, 42)"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Event("x", 1, 2).value = 5


class TestObservableEvents:
    GAMMA = {"l": L, "h": H}

    def test_projection(self):
        events = (Event("l", 1, 5), Event("h", 2, 9), Event("l", 3, 12))
        low = observable_events(events, self.GAMMA, L)
        assert [e.name for e in low] == ["l", "l"]

    def test_top_sees_all(self):
        events = (Event("l", 1, 5), Event("h", 2, 9))
        assert len(observable_events(events, self.GAMMA, H)) == 2

    def test_unlabeled_name_raises(self):
        with pytest.raises(KeyError):
            observable_events((Event("q", 1, 2),), self.GAMMA, L)

    def test_observation_key_includes_everything(self):
        e1 = (Event("l", 1, 5),)
        assert observation_key(e1) != observation_key((Event("l", 1, 6),))
        assert observation_key(e1) != observation_key((Event("l", 2, 5),))
        assert observation_key(e1) == observation_key((Event("l", 1, 5),))

    def test_observation_key_sees_indices(self):
        a = (Event("a", 1, 5, index=0),)
        b = (Event("a", 1, 5, index=1),)
        assert observation_key(a) != observation_key(b)


class TestMitigationRecords:
    def test_duration(self):
        assert MitigationRecord("x", H, 10, 25).duration == 15

    def test_ids_and_times(self):
        rs = records()
        assert mitigation_ids(rs) == ("a", "b", "c", "d")
        assert mitigation_times(rs) == (10, 15, 5, 20)

    def test_project_by_pc_in(self):
        rs = records()
        kept = project_mitigations(rs, pc_in=frozenset({H}))
        assert mitigation_ids(kept) == ("b",)

    def test_project_by_pc_not_in(self):
        rs = records()
        kept = project_mitigations(rs, pc_not_in=frozenset({H}))
        # 'd' has no pc label: pc_not_in treats None as not-in-the-set.
        assert mitigation_ids(kept) == ("a", "c", "d")

    def test_project_by_level(self):
        rs = records()
        kept = project_mitigations(rs, level_in=frozenset({L}))
        assert mitigation_ids(kept) == ("c",)

    def test_composed_projection(self):
        # Definition 2's predicate: low pc, high level.
        rs = records()
        kept = project_mitigations(
            rs, pc_not_in=frozenset({H}), level_in=frozenset({H})
        )
        assert mitigation_ids(kept) == ("a", "d")

    def test_empty_projection(self):
        assert project_mitigations((), pc_in=frozenset({L})) == ()
