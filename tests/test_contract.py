"""The software/hardware contract, checked per design (Properties 2, 5-7).

These tests are the paper's claim that implementers can *verify* their
designs: the secure models must pass every property; the commodity baseline
must be caught violating the write-label discipline.
"""

import pytest

from repro.lang import DEFAULT_LATTICE
from repro.lattice import chain, diamond
from repro.hardware import (
    NoFillHardware,
    NullHardware,
    PartitionedHardware,
    StandardHardware,
    run_contract_suite,
    tiny_machine,
)
from repro.hardware.contract import (
    check_determinism,
    check_read_label,
    check_single_step_ni,
    check_write_label,
)

LAT = DEFAULT_LATTICE

SECURE_FACTORIES = [
    ("null", lambda lat: NullHardware(lat)),
    ("nofill", lambda lat: NoFillHardware(lat, tiny_machine())),
    ("partitioned", lambda lat: PartitionedHardware(lat, tiny_machine())),
]


@pytest.mark.parametrize("name,make", SECURE_FACTORIES)
def test_secure_designs_pass_all_properties(name, make):
    report = run_contract_suite(lambda: make(LAT), LAT, trials=15)
    assert report.ok(), f"{name}: {report.summary()}"


@pytest.mark.parametrize("name,make", SECURE_FACTORIES)
def test_secure_designs_pass_multilevel(name, make):
    lat = chain(("L", "M", "H"))
    report = run_contract_suite(lambda: make(lat), lat, trials=10)
    assert report.ok(), f"{name} on chain: {report.summary()}"


@pytest.mark.parametrize("name,make", SECURE_FACTORIES)
def test_secure_designs_pass_diamond(name, make):
    lat = diamond()
    report = run_contract_suite(lambda: make(lat), lat, trials=10)
    assert report.ok(), f"{name} on diamond: {report.summary()}"


class TestStandardHardwareIsInsecure:
    def test_fails_write_label(self):
        # The Sec. 2.2 implicit flow: high-context steps modify the shared
        # (bottom-level) cache state.
        report = check_write_label(
            lambda: StandardHardware(LAT, tiny_machine()), LAT, trials=10
        )
        assert not report.ok("P5-write-label")

    def test_still_deterministic(self):
        report = check_determinism(
            lambda: StandardHardware(LAT, tiny_machine()), LAT, trials=10
        )
        assert report.ok("P2-determinism")

    def test_whole_suite_flags_it(self):
        report = run_contract_suite(
            lambda: StandardHardware(LAT, tiny_machine()), LAT, trials=10
        )
        assert "P5-write-label" in report.failing_properties()


class TestDeliberatelyBrokenHardware:
    """The checkers must catch each kind of bug, not just pass good designs."""

    def test_nondeterminism_caught(self):
        class Flaky(NullHardware):
            def __init__(self, lattice):
                super().__init__(lattice)
                self.counter = 0

            def step(self, kind, trace, read_label, write_label):
                self.counter += 1
                # Cost depends on identity of this instance's history in a
                # way a fresh clone will not reproduce after interleaving.
                return (id(self) % 7) + 1

        report = check_determinism(lambda: Flaky(LAT), LAT, trials=5)
        assert not report.ok("P2-determinism")

    def test_read_label_violation_caught(self):
        class LeakyRead(PartitionedHardware):
            def step(self, kind, trace, read_label, write_label):
                cost = super().step(kind, trace, read_label, write_label)
                # Bug: cost depends on the H partition even for lr = L.
                high = self.partitions[self.lattice.top]
                tags = sum(sum(s) for s in high.l1_data.state())
                return cost + tags % 17

        report = check_read_label(
            lambda: LeakyRead(LAT, tiny_machine()), LAT, trials=10
        )
        assert not report.ok("P6-read-label")

    def test_single_step_ni_violation_caught(self):
        class LeakyWrite(PartitionedHardware):
            def step(self, kind, trace, read_label, write_label):
                cost = super().step(kind, trace, read_label, write_label)
                # Bug: copy a high line into the low partition whenever the
                # high partition holds the touched address.
                if trace.reads:
                    high = self.partitions[self.lattice.top]
                    low = self.partitions[self.lattice.bottom]
                    if high.holds_data(trace.reads[0]):
                        low.l1_data.touch(trace.reads[0])
                return cost

        ni = check_single_step_ni(
            lambda: LeakyWrite(LAT, tiny_machine()), LAT, trials=15
        )
        p5 = check_write_label(
            lambda: LeakyWrite(LAT, tiny_machine()), LAT, trials=15
        )
        assert not (ni.ok("P7-single-step-NI") and p5.ok("P5-write-label"))


class TestReportPlumbing:
    def test_summary_format(self):
        report = run_contract_suite(lambda: NullHardware(LAT), LAT, trials=2)
        text = report.summary()
        assert "P2-determinism" in text
        assert "OK" in text

    def test_failing_properties_sorted(self):
        report = run_contract_suite(
            lambda: StandardHardware(LAT, tiny_machine()), LAT, trials=5
        )
        failing = report.failing_properties()
        assert failing == tuple(sorted(failing))
