"""The branch-predictor component (Sec. 2.1's 'branch predictors and branch
target buffers' channel) and its security treatment per hardware design."""

import pytest

from repro.lang import DEFAULT_LATTICE, parse
from repro.machine import AccessTrace, Memory
from repro.hardware import (
    BranchPredictor,
    BranchPredictorParams,
    MachineParams,
    NoFillHardware,
    PartitionedHardware,
    StandardHardware,
    StepKind,
    run_contract_suite,
    tiny_machine,
)
from repro.semantics import execute, observable_events
from repro.typesystem import SecurityEnvironment, typecheck

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]
CODE = 0x0040_0000


def machine_with_predictor():
    from dataclasses import replace

    return replace(
        tiny_machine(), branch=BranchPredictorParams(entries=16, penalty=3)
    )


def branch(env, addr, taken, label):
    return env.step(
        StepKind.BRANCH,
        AccessTrace(instruction=addr, taken=taken),
        label, label,
    )


class TestPredictorUnit:
    def test_reset_predicts_not_taken(self):
        p = BranchPredictor(BranchPredictorParams())
        assert not p.predict(CODE)

    def test_training_flips_prediction(self):
        p = BranchPredictor(BranchPredictorParams())
        p.update(CODE, True)
        assert p.predict(CODE)  # 1 -> 2: weakly taken

    def test_saturating(self):
        p = BranchPredictor(BranchPredictorParams())
        for _ in range(10):
            p.update(CODE, True)
        p.update(CODE, False)
        assert p.predict(CODE)  # 3 -> 2: still taken

    def test_cost(self):
        p = BranchPredictor(BranchPredictorParams(penalty=7))
        assert p.cost(CODE, False) == 0
        assert p.cost(CODE, True) == 7

    def test_resolve_trains(self):
        p = BranchPredictor(BranchPredictorParams(penalty=7))
        assert p.resolve(CODE, True) == 7  # mispredicted, now training
        p.resolve(CODE, True)
        assert p.resolve(CODE, True) == 0  # learned

    def test_resolve_without_training(self):
        p = BranchPredictor(BranchPredictorParams(penalty=7))
        before = p.state()
        p.resolve(CODE, True, train=False)
        assert p.state() == before

    def test_aliasing(self):
        p = BranchPredictor(BranchPredictorParams(entries=4))
        alias = CODE + 4 * 8  # same index modulo 4 entries
        p.update(CODE, True)
        p.update(CODE, True)
        assert p.predict(alias)  # the collision is the attack surface

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchPredictorParams(entries=3)
        with pytest.raises(ValueError):
            BranchPredictorParams(reset_value=9)

    def test_clone(self):
        p = BranchPredictor(BranchPredictorParams())
        p.update(CODE, True)
        twin = p.clone()
        twin.update(CODE, True)
        assert p.state() != twin.state()


class TestContractWithPredictor:
    @pytest.mark.parametrize("factory", [
        lambda: NoFillHardware(LAT, machine_with_predictor()),
        lambda: PartitionedHardware(LAT, machine_with_predictor()),
    ])
    def test_secure_designs_still_pass(self, factory):
        report = run_contract_suite(factory, LAT, trials=12)
        assert report.ok(), report.summary()

    def test_standard_still_fails_p5(self):
        report = run_contract_suite(
            lambda: StandardHardware(LAT, machine_with_predictor()),
            LAT, trials=12,
        )
        assert "P5-write-label" in report.failing_properties()


class TestBtbStyleChannel:
    """The Aciicmez attack shape: the victim's secret-outcome branch trains
    predictor state that the attacker's own aliasing branch then times."""

    def _victim(self, env, secret):
        # Secret-dependent outcome at a fixed branch address, high context.
        for _ in range(3):
            branch(env, CODE, taken=bool(secret), label=H)
        return env

    def _attacker_probe(self, env):
        # The attacker times its own PUBLIC branch at an aliasing address.
        alias = CODE + 16 * 8  # same table index for entries=16
        return branch(env.clone(), alias, taken=True, label=L)

    def test_leaks_on_standard(self):
        costs = set()
        for secret in (0, 1):
            env = self._victim(
                StandardHardware(LAT, machine_with_predictor()), secret
            )
            costs.add(self._attacker_probe(env))
        assert len(costs) == 2  # the probe distinguishes the secret

    @pytest.mark.parametrize("cls", [NoFillHardware, PartitionedHardware])
    def test_blind_on_secure_designs(self, cls):
        costs = set()
        for secret in (0, 1):
            env = self._victim(cls(LAT, machine_with_predictor()), secret)
            costs.add(self._attacker_probe(env))
        assert len(costs) == 1


class TestEndToEndWithPredictor:
    def test_predictor_speeds_up_steady_loops(self):
        src = "i := 8 [L,L]; while i > 0 do { i := i - 1 [L,L] } [L,L]"
        plain = execute(parse(src), Memory({"i": 8}),
                        StandardHardware(LAT, tiny_machine()))
        predicted = execute(parse(src), Memory({"i": 8}),
                            StandardHardware(LAT, machine_with_predictor()))
        # Mispredictions only at the taken/not-taken transitions; the
        # steady iterations predict correctly, so total penalty is small.
        assert 0 < predicted.time - plain.time <= 4 * 3

    def test_noninterference_holds_with_predictor(self):
        # The well-typed high loop trains only the H partition's predictor;
        # low observations coincide.
        src = """
        l := 1 [L,L];
        while h > 0 do { h := h - 1 [H,H] } [H,H]
        """
        gamma = SecurityEnvironment(LAT, {"l": L, "h": H})
        typecheck(parse(src), gamma)
        events = []
        envs = []
        for h in (0, 9):
            r = execute(parse(src), Memory({"l": 0, "h": h}),
                        PartitionedHardware(LAT, machine_with_predictor()))
            events.append(observable_events(r.events, gamma, L))
            envs.append(r.environment)
        assert events[0] == events[1]
        assert envs[0].equivalent_to(envs[1], L)

    def test_secret_branch_pattern_leaks_on_nopar(self):
        # The same program on shared-predictor hardware: the low partition
        # of 'environment state' is the single shared predictor, so the
        # secret's branch pattern imprints on it.
        src = "while h > 0 do { h := h - 1 [H,H] } [H,H]"
        states = set()
        for h in (0, 9):
            r = execute(parse(src), Memory({"h": h}),
                        StandardHardware(LAT, machine_with_predictor()))
            states.add(r.environment.project(L))
        assert len(states) == 2
