"""Unit tests for the quantitative layer: Definitions 1-2, Lemma 1,
Theorem 2, entropy measures, and the Sec. 7 closed-form bounds."""

import math

import pytest

from repro.api import compile_program
from repro.lang import DEFAULT_LATTICE
from repro.lattice import chain
from repro.machine import Memory
from repro.hardware import NullHardware, PartitionedHardware, tiny_machine
from repro.quantitative import (
    VariantError,
    check_low_determinism,
    doubling_duration_count,
    leakage_bound,
    leakage_bound_unknown_k,
    measure_leakage,
    min_entropy_leakage,
    relevant_level_count,
    secret_variants,
    shannon_leakage,
    timing_variations,
    verify_theorem2,
)

LAT = DEFAULT_LATTICE
L, H = LAT["L"], LAT["H"]


def compiled(src, gamma, lattice=None, check=True):
    return compile_program(src, gamma=gamma, lattice=lattice, check=check)


def leak(cp, base, variants, levels=None, adversary=None, env=None,
         lattice=None):
    lattice = lattice if lattice is not None else LAT
    env = env if env is not None else NullHardware(lattice)
    return measure_leakage(
        cp.program,
        cp.gamma,
        lattice,
        levels if levels is not None else [lattice.top],
        adversary if adversary is not None else lattice.bottom,
        base,
        env,
        variants,
        mitigate_pc=cp.typing.mitigate_pc,
    )


class TestDefinition1:
    def test_direct_sleep_leak_counts_observations(self):
        cp = compiled("sleep(h); l := 1", {"h": "H", "l": "L"}, check=False)
        base = Memory({"h": 0, "l": 0})
        variants = secret_variants(base, ({"h": v} for v in range(8)))
        result = leak(cp, base, variants)
        assert result.distinguishable == 8
        assert result.bits == 3.0

    def test_no_leak_when_no_secret_dependence(self):
        cp = compiled("sleep(l); l := 1", {"h": "H", "l": "L"})
        base = Memory({"h": 0, "l": 3})
        variants = secret_variants(base, ({"h": v} for v in range(8)))
        result = leak(cp, base, variants)
        assert result.distinguishable == 1
        assert result.bits == 0.0

    def test_value_leak_counts_too(self):
        # Definition 1 counts whole observations (values and times).
        cp = compiled("l := h", {"h": "H", "l": "L"}, check=False)
        base = Memory({"h": 0, "l": 0})
        variants = secret_variants(base, ({"h": v} for v in range(4)))
        assert leak(cp, base, variants).distinguishable == 4

    def test_mitigated_leak_bounded_by_doubling(self):
        cp = compiled("mitigate(4, H) { sleep(h) }; l := 1",
                      {"h": "H", "l": "L"})
        base = Memory({"h": 0, "l": 0})
        variants = secret_variants(base, ({"h": v} for v in range(64)))
        result = leak(cp, base, variants)
        # 64 secrets collapse onto the few power-of-two paddings.
        assert result.distinguishable <= 6
        assert result.bits <= math.log2(6)

    def test_variant_validation(self):
        cp = compiled("l := 1", {"h": "H", "l": "L"})
        base = Memory({"h": 0, "l": 0})
        bad = secret_variants(base, [{"l": 5}])  # varies a public var
        with pytest.raises(VariantError):
            leak(cp, base, bad)

    def test_validation_can_be_disabled(self):
        cp = compiled("l := 1", {"h": "H", "l": "L"})
        base = Memory({"h": 0, "l": 0})
        bad = secret_variants(base, [{"l": 5}])
        result = measure_leakage(
            cp.program, cp.gamma, LAT, [H], L, base,
            NullHardware(LAT), bad, validate=False,
        )
        assert result.runs == 1

    def test_multilevel_exclusion(self):
        # Sec. 6.2: leakage from {M} to L differs from leakage from {H}.
        lat = chain(("L", "M", "H"))
        cp = compiled("sleep(h); l := 1", {"h": "H", "m": "M", "l": "L"},
                      lattice=lat, check=False)
        base = Memory({"h": 0, "m": 0, "l": 0})
        h_variants = secret_variants(base, ({"h": v} for v in range(4)))
        m_variants = secret_variants(base, ({"m": v} for v in range(4)))
        env = NullHardware(lat)
        leak_h = measure_leakage(cp.program, cp.gamma, lat, [lat["H"]],
                                 lat["L"], base, env, h_variants,
                                 mitigate_pc={})
        leak_m = measure_leakage(cp.program, cp.gamma, lat, [lat["M"]],
                                 lat["L"], base, env, m_variants,
                                 mitigate_pc={})
        assert leak_h.bits == 2.0
        assert leak_m.bits == 0.0  # sleep(h) doesn't read M

    def test_adversary_observing_level_sees_nothing_new(self):
        # L_{lA} excludes levels at or below the adversary.
        lat = chain(("L", "M", "H"))
        cp = compiled("sleep(m); h := 1", {"h": "H", "m": "M"},
                      lattice=lat, check=False)
        base = Memory({"h": 0, "m": 0})
        variants = secret_variants(base, ({"m": v} for v in range(4)))
        result = measure_leakage(
            cp.program, cp.gamma, lat, [lat["M"]], lat["M"], base,
            NullHardware(lat), variants, validate=False, mitigate_pc={},
        )
        # From M's own point of view, M is not a secret: allowed set empty,
        # so validation would reject variation; with it off, Q still counts
        # distinct observations (the adversary sees h's update at M? no --
        # h is above M, so the only events are invisible).
        assert result.distinguishable >= 1


class TestDefinition2AndTheorem2:
    def test_variations_of_mitigated_sleep(self):
        cp = compiled("mitigate(4, H) { sleep(h) }; l := 1",
                      {"h": "H", "l": "L"})
        base = Memory({"h": 0, "l": 0})
        variants = secret_variants(base, ({"h": v} for v in range(64)))
        v = timing_variations(
            cp.program, LAT, [H], L, base, NullHardware(LAT), variants,
            mitigate_pc=cp.typing.mitigate_pc,
        )
        assert 1 < v.count <= 6
        assert len(v.id_vectors) == 1  # Lemma 1: ids are low-deterministic

    def test_theorem2_holds_exhaustively(self):
        cp = compiled("mitigate(4, H) { sleep(h) }; l := 1",
                      {"h": "H", "l": "L"})
        base = Memory({"h": 0, "l": 0})
        variants = secret_variants(base, ({"h": v} for v in range(32)))
        result = verify_theorem2(
            cp.program, cp.gamma, LAT, [H], L, base, NullHardware(LAT),
            variants, mitigate_pc=cp.typing.mitigate_pc,
        )
        assert result.holds

    def test_theorem2_zero_leakage_without_mitigate(self):
        # Corollary: no mitigate commands -> |V| = 1 -> zero leakage.
        cp = compiled("h := h + 1; g := h", {"h": "H", "g": "H"})
        base = Memory({"h": 0, "g": 0})
        variants = secret_variants(base, ({"h": v} for v in range(8)))
        result = verify_theorem2(
            cp.program, cp.gamma, LAT, [H], L, base,
            PartitionedHardware(LAT, tiny_machine()), variants,
            mitigate_pc=cp.typing.mitigate_pc,
        )
        assert result.variations.count == 1
        assert result.leakage.bits == 0.0
        assert result.holds

    def test_theorem2_on_partitioned_hardware(self):
        cp = compiled(
            "mitigate(8, H) { while h > 0 do { h := h - 1 } }; l := 1",
            {"h": "H", "l": "L"},
        )
        base = Memory({"h": 0, "l": 0})
        variants = secret_variants(base, ({"h": v} for v in range(16)))
        result = verify_theorem2(
            cp.program, cp.gamma, LAT, [H], L, base,
            PartitionedHardware(LAT, tiny_machine()), variants,
            mitigate_pc=cp.typing.mitigate_pc,
        )
        assert result.holds

    def test_high_context_mitigations_projected_out(self):
        # Sec. 6.3's nesting example: only the outer (low-pc) mitigate
        # matters for the variation count.
        src = ("mitigate@outer (64, H) { if h then {"
               " mitigate@inner (1, H) { h := h + 1 } } else { skip } };"
               "l := 1")
        cp = compiled(src, {"h": "H", "l": "L"})
        base = Memory({"h": 0, "l": 0})
        variants = secret_variants(base, ({"h": v} for v in range(2)))
        v = timing_variations(
            cp.program, LAT, [H], L, base, NullHardware(LAT), variants,
            mitigate_pc=cp.typing.mitigate_pc,
        )
        for ids in v.id_vectors:
            assert ids == ("outer",)

    def test_low_determinism_checker(self):
        cp = compiled("mitigate(4, H) { sleep(h) }; l := 1",
                      {"h": "H", "l": "L"})
        base = Memory({"h": 0, "l": 0})
        variants = secret_variants(base, ({"h": v} for v in range(16)))
        violations = check_low_determinism(
            cp.program, LAT, [H], L, base, NullHardware(LAT), variants,
            mitigate_pc=cp.typing.mitigate_pc,
        )
        assert violations == []


class TestEntropyMeasures:
    def _observations(self, src, gamma, n, check=True):
        cp = compiled(src, gamma, check=check)
        base = Memory({k: 0 for k in gamma})
        variants = secret_variants(base, ({"h": v} for v in range(n)))
        return leak(cp, base, variants)

    def test_shannon_bounded_by_log_count(self):
        r = self._observations("mitigate(4, H) { sleep(h) }; l := 1",
                               {"h": "H", "l": "L"}, 32)
        assert shannon_leakage(r.observations) <= r.bits + 1e-9

    def test_min_entropy_bounded_by_log_count(self):
        r = self._observations("mitigate(4, H) { sleep(h) }; l := 1",
                               {"h": "H", "l": "L"}, 32)
        assert min_entropy_leakage(r.observations) <= r.bits + 1e-9

    def test_identity_channel_full_leakage(self):
        r = self._observations("l := h", {"h": "H", "l": "L"}, 16,
                               check=False)
        assert shannon_leakage(r.observations) == pytest.approx(4.0)
        assert min_entropy_leakage(r.observations) == pytest.approx(4.0)

    def test_constant_channel_zero(self):
        r = self._observations("l := 1", {"h": "H", "l": "L"}, 16)
        assert shannon_leakage(r.observations) == pytest.approx(0.0)
        assert min_entropy_leakage(r.observations) == pytest.approx(0.0)

    def test_nonuniform_prior(self):
        r = self._observations("l := h % 2", {"h": "H", "l": "L"}, 4,
                               check=False)
        skewed = [0.7, 0.1, 0.1, 0.1]
        assert shannon_leakage(r.observations, skewed) < shannon_leakage(
            r.observations
        )


class TestBounds:
    def test_relevant_level_count(self):
        lat = chain(("L", "M", "H"))
        assert relevant_level_count(lat, [lat["M"]], lat["L"]) == 2
        assert relevant_level_count(lat, [lat["H"]], lat["M"]) == 1

    def test_zero_when_no_mitigations(self):
        assert leakage_bound(LAT, [H], L, elapsed=10 ** 6,
                             relevant_mitigations=0) == 0.0

    def test_formula(self):
        # |L^| * log2(K+1) * (1 + log2 T)
        value = leakage_bound(LAT, [H], L, elapsed=1024,
                              relevant_mitigations=3)
        assert value == pytest.approx(1 * 2.0 * 11.0)

    def test_monotone_in_k_and_t(self):
        b1 = leakage_bound(LAT, [H], L, 1000, 1)
        b2 = leakage_bound(LAT, [H], L, 1000, 10)
        b3 = leakage_bound(LAT, [H], L, 100000, 10)
        assert b1 < b2 < b3

    def test_unknown_k_is_log_squared(self):
        t = 2 ** 20
        bound = leakage_bound_unknown_k(LAT, [H], L, t)
        assert bound == pytest.approx(math.log2(t + 1) * 21.0)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            leakage_bound(LAT, [H], L, 10, -1)

    def test_bound_dominates_measured_leakage(self):
        cp = compiled("mitigate(4, H) { sleep(h) }; l := 1",
                      {"h": "H", "l": "L"})
        base = Memory({"h": 0, "l": 0})
        variants = secret_variants(base, ({"h": v} for v in range(64)))
        result = leak(cp, base, variants)
        # K = 1 relevant mitigate; T = worst-case run time.
        # Observation keys are (name, index, value, time) tuples.
        worst = max(
            max(key[-1][3] for key in result.observations), 1
        )
        bound = leakage_bound(LAT, [H], L, worst, 1)
        assert result.bits <= bound + 1e-9

    def test_doubling_duration_count(self):
        assert doubling_duration_count(4, 3) == 1
        assert doubling_duration_count(4, 4) == 1 + 0
        assert doubling_duration_count(4, 64) == 5
        assert doubling_duration_count(0, 64) == 7  # estimate clamps to 1
