"""The RSA case study (Sec. 8.4): correctness, channel, and mitigation."""

import random

import pytest

from repro.apps.rsa import RsaSystem
from repro.apps.rsa_math import (
    RsaKey,
    decrypt,
    egcd,
    encrypt,
    encrypt_blocks,
    generate_keypair,
    is_prime,
    modinv,
    random_prime,
)
from repro.attacks import fit_weight_model, hamming_weight_attack
from repro.typesystem import TypingError, typecheck

KEY_BITS = 16
BLOCKS = 2


def keys_with_distinct_weights(bits=KEY_BITS, count=2, spread=3):
    """Deterministically pick keys whose private exponents differ in
    Hamming weight by at least ``spread``."""
    picked = []
    for seed in range(200):
        key = generate_keypair(bits, seed=seed)
        if all(abs(key.hamming_weight() - k.hamming_weight()) >= spread
               for k in picked):
            picked.append(key)
        if len(picked) == count:
            return picked
    raise AssertionError("could not find keys with spread weights")


class TestRsaMath:
    def test_miller_rabin_small(self):
        primes = {2, 3, 5, 7, 11, 13, 97, 7919}
        for n in range(2, 100):
            assert is_prime(n) == (n in primes or n in
                                   {17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
                                    59, 61, 67, 71, 73, 79, 83, 89})

    def test_miller_rabin_carmichael(self):
        # 561, 1105, 1729 fool Fermat but not Miller-Rabin.
        for n in (561, 1105, 1729, 2465):
            assert not is_prime(n)

    def test_random_prime_bits(self):
        rng = random.Random(0)
        for bits in (5, 8, 16):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_prime(p)

    def test_egcd(self):
        g, x, y = egcd(240, 46)
        assert g == 2 and 240 * x + 46 * y == 2

    def test_modinv(self):
        assert (modinv(3, 11) * 3) % 11 == 1
        with pytest.raises(ValueError):
            modinv(4, 8)

    def test_keypair_valid(self):
        key = generate_keypair(24, seed=5)
        message = 12345 % key.n
        assert decrypt(encrypt(message, key), key) == message

    def test_roundtrip_many(self):
        key = generate_keypair(KEY_BITS, seed=7)
        rng = random.Random(1)
        for _ in range(20):
            m = rng.randrange(key.n)
            assert decrypt(encrypt(m, key), key) == m

    def test_private_bits(self):
        key = generate_keypair(KEY_BITS, seed=3)
        bits = key.private_bits(64)
        assert sum(b << i for i, b in enumerate(bits)) == key.d

    def test_hamming_weight(self):
        key = RsaKey(n=100, e=3, d=0b10110)
        assert key.hamming_weight() == 3


class TestDecryptionProgram:
    @pytest.mark.parametrize("mode", ["language", "none", "system"])
    def test_decryption_correct(self, mode):
        system = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                           mitigation_mode=mode, budget=100)
        key = generate_keypair(KEY_BITS, seed=2)
        rng = random.Random(0)
        message = [rng.randrange(1, key.n) for _ in range(BLOCKS)]
        cipher = encrypt_blocks(message, key)
        result = system.run(key, cipher, hardware="null")
        plain = [result.memory.read_elem("plain", i) for i in range(BLOCKS)]
        assert plain == message

    def test_decrypt_and_check_helper(self):
        system = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                           mitigation_mode="language", budget=100)
        key = generate_keypair(KEY_BITS, seed=4)
        message = [5, 6]
        plain, _ = system.decrypt_and_check(key, encrypt_blocks(message, key))
        assert plain == message

    def test_wrong_block_count_rejected(self):
        system = RsaSystem(key_bits=KEY_BITS, blocks=2)
        key = generate_keypair(KEY_BITS, seed=2)
        with pytest.raises(ValueError):
            system.memory(key, [1, 2, 3])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            RsaSystem(mitigation_mode="quantum")


class TestTypeDiscipline:
    def test_language_mode_typechecks(self):
        system = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                           mitigation_mode="language")
        info = typecheck(system.program, system.gamma)
        assert "rsa_block" in info.mitigate_pc

    @pytest.mark.parametrize("mode", ["none", "system"])
    def test_other_modes_ill_typed(self, mode):
        system = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                           mitigation_mode=mode)
        with pytest.raises(TypingError):
            typecheck(system.program, system.gamma)


class TestTimingChannel:
    def test_unmitigated_time_tracks_key_weight(self):
        system = RsaSystem(key_bits=KEY_BITS, blocks=1,
                           mitigation_mode="none")
        keys = [generate_keypair(KEY_BITS, seed=s) for s in range(8)]
        message = [3]
        times = []
        for key in keys:
            cipher = encrypt_blocks(message, key)
            times.append(system.run(key, cipher, hardware="null").time)
        model = fit_weight_model([k.hamming_weight() for k in keys], times)
        assert model.correlation > 0.95

    def test_unmitigated_distinguishes_keys(self):
        system = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                           mitigation_mode="none")
        k1, k2 = keys_with_distinct_weights()
        message = [7] * BLOCKS
        t1 = system.run(k1, encrypt_blocks(message, k1),
                        hardware="partitioned").time
        t2 = system.run(k2, encrypt_blocks(message, k2),
                        hardware="partitioned").time
        assert t1 != t2

    def test_mitigated_constant_across_keys(self):
        system = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                           mitigation_mode="language")
        system.calibrate_budget(samples=4)
        k1, k2 = keys_with_distinct_weights()
        message = [7] * BLOCKS
        t1 = system.run(k1, encrypt_blocks(message, k1),
                        hardware="partitioned").time
        t2 = system.run(k2, encrypt_blocks(message, k2),
                        hardware="partitioned").time
        assert t1 == t2

    def test_weight_attack_end_to_end(self):
        unmitigated = RsaSystem(key_bits=KEY_BITS, blocks=1,
                                mitigation_mode="none")
        calibration = [generate_keypair(KEY_BITS, seed=s)
                       for s in range(6)]
        target = generate_keypair(KEY_BITS, seed=99)
        outcome = hamming_weight_attack(
            unmitigated, calibration, target, [9], hardware="null"
        )
        assert outcome.succeeded(tolerance=1.0)

    def test_weight_attack_defeated_by_mitigation(self):
        mitigated = RsaSystem(key_bits=KEY_BITS, blocks=1,
                              mitigation_mode="language")
        mitigated.calibrate_budget(samples=4)
        calibration = [generate_keypair(KEY_BITS, seed=s)
                       for s in range(6)]
        target = generate_keypair(KEY_BITS, seed=99)
        outcome = hamming_weight_attack(
            mitigated, calibration, target, [9], hardware="partitioned"
        )
        # The fitted line is flat: recovery degenerates.
        assert abs(outcome.model.slope) < 1e-6 or not outcome.succeeded(0.5)

    def test_per_block_mitigation_durations_uniform(self):
        system = RsaSystem(key_bits=KEY_BITS, blocks=4,
                           mitigation_mode="language")
        system.calibrate_budget(samples=4)
        key = generate_keypair(KEY_BITS, seed=1)
        message = [3, 4, 5, 6]
        result = system.run(key, encrypt_blocks(message, key),
                            hardware="partitioned")
        assert len(result.mitigations) == 4
        assert len({m.duration for m in result.mitigations}) <= 2


class TestBalancedMode:
    """Agat-style branch balancing (the Sec. 9 code-transformation line)."""

    def test_balanced_decrypts_correctly(self):
        system = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                           mitigation_mode="balanced")
        key = generate_keypair(KEY_BITS, seed=6)
        message = [11, 12]
        cipher = encrypt_blocks(message, key)
        result = system.run(key, cipher, hardware="null")
        plain = [result.memory.read_elem("plain", i) for i in range(BLOCKS)]
        assert plain == message

    def test_balanced_closes_weight_channel_on_null(self):
        system = RsaSystem(key_bits=KEY_BITS, blocks=1,
                           mitigation_mode="balanced")
        times = set()
        for seed in range(6):
            key = generate_keypair(KEY_BITS, seed=seed)
            times.add(system.run(key, encrypt_blocks([5], key),
                                 hardware="null").time)
        assert len(times) == 1

    def test_balanced_still_ill_typed(self):
        # The transformation carries no certificate.
        system = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                           mitigation_mode="balanced")
        with pytest.raises(TypingError):
            typecheck(system.program, system.gamma)

    def test_balanced_slower_than_unbalanced(self):
        key = generate_keypair(KEY_BITS, seed=6)
        cipher = encrypt_blocks([5], key)
        plain_sys = RsaSystem(key_bits=KEY_BITS, blocks=1,
                              mitigation_mode="none")
        bal_sys = RsaSystem(key_bits=KEY_BITS, blocks=1,
                            mitigation_mode="balanced")
        t_plain = plain_sys.run(key, cipher, hardware="null").time
        t_bal = bal_sys.run(key, cipher, hardware="null").time
        assert t_bal > t_plain
