"""The adversarial hardware zoo: every model leaks exactly as advertised.

Two layers of assurance per model: a unit test that triggers the leak
mechanism by hand (so we know *why* it is insecure), and a contract-suite
run asserting the randomized checkers detect it with the declared property
(so we know the checkers are not vacuous).
"""

import pytest

from repro.hardware import (
    REGISTRY,
    FrequencyScalingHardware,
    LeakyTlbHardware,
    SharedBusHardware,
    SpeculativeHardware,
    StepKind,
    WriteBackHardware,
    run_contract_suite,
    tiny_machine,
)
from repro.lattice import two_point
from repro.machine.layout import AccessTrace

DATA = 0x1000_0000
CODE = 0x0040_0000


def _labels(lattice):
    low = lattice.bottom
    high = lattice.top
    return low, high


def _skip(env, addr, read, write):
    return env.step(
        StepKind.SKIP, AccessTrace(instruction=CODE, writes=(addr,)), read, write
    )


class TestContractVerdicts:
    """run_contract_suite agrees with every spec's declared verdict."""

    @pytest.mark.parametrize(
        "name", [s.name for s in REGISTRY.specs(secure=True)]
    )
    def test_secure_models_pass(self, name):
        spec = REGISTRY.get(name)
        for point in spec.lattice_points:
            from repro.hardware.registry import LATTICE_POINTS

            lattice = LATTICE_POINTS[point]()
            report = run_contract_suite(
                lambda lat=lattice: spec.make(lat, tiny_machine()),
                lattice,
                trials=12,
                seed=11,
            )
            assert report.ok(), (
                f"{name} on {point}: {report.failing_properties()}"
            )

    @pytest.mark.parametrize(
        "name", [s.name for s in REGISTRY.specs(secure=False)]
    )
    def test_insecure_models_detected_with_declared_property(self, name):
        spec = REGISTRY.get(name)
        lattice = two_point()
        report = run_contract_suite(
            lambda: spec.make(lattice, tiny_machine()),
            lattice,
            trials=40,
            seed=7,
        )
        failing = report.failing_properties()
        assert failing, f"{name} went undetected"
        assert set(failing) <= set(spec.violates), (
            f"{name} violated {failing}, spec declares {spec.violates}"
        )


class TestSharedBus:
    def test_queued_traffic_stalls_the_next_step(self):
        lattice = two_point()
        low, high = _labels(lattice)
        quiet = SharedBusHardware(lattice, tiny_machine())
        busy = quiet.clone()
        # High traffic enqueues transactions the low reader must stall behind.
        _skip(busy, DATA, high, high)
        assert quiet.equivalent_to(busy, low)
        probe = AccessTrace(instruction=CODE + 24, reads=(DATA + 24,))
        cost_quiet = quiet.step(StepKind.ASSIGN, probe, low, low)
        cost_busy = busy.step(StepKind.ASSIGN, probe, low, low)
        assert cost_busy > cost_quiet

    def test_queue_drains_and_caps(self):
        lattice = two_point()
        _, high = _labels(lattice)
        env = SharedBusHardware(lattice, tiny_machine())
        for _ in range(10_000):
            _skip(env, DATA, high, high)
        assert env._bus_queue <= SharedBusHardware.QUEUE_CAP


class TestWriteBack:
    def test_high_dirty_lines_tax_low_reads(self):
        lattice = two_point()
        low, high = _labels(lattice)
        params = tiny_machine()
        clean = WriteBackHardware(lattice, params)
        dirty = clean.clone()
        # A high store dirties a block; the conflicting address below maps
        # to the same (tiny, 2-set) cache set but a different block.
        block_bytes = params.l1_data.block_bytes
        victim = DATA
        conflict = DATA + block_bytes * params.l1_data.sets
        _skip(dirty, victim, high, high)
        assert clean.equivalent_to(dirty, low)
        probe = AccessTrace(instruction=CODE, reads=(conflict,))
        cost_clean = clean.step(StepKind.ASSIGN, probe, low, low)
        cost_dirty = dirty.step(StepKind.ASSIGN, probe, low, low)
        assert cost_dirty == cost_clean + WriteBackHardware.WRITEBACK_PENALTY
        # The drain cleared the high dirty bit (legal under P5; the cost
        # already leaked).
        assert not dirty._dirty[high]

    def test_bypassed_steps_owe_no_writebacks(self):
        lattice = two_point()
        low, high = _labels(lattice)
        env = WriteBackHardware(lattice, tiny_machine())
        _skip(env, DATA, high, high)
        before = {level: set(s) for level, s in env._dirty.items()}
        # lr != lw runs uncached: no drain, no new dirty lines.
        env.step(
            StepKind.ASSIGN,
            AccessTrace(instruction=CODE, reads=(DATA + 16,), writes=(DATA + 16,)),
            low,
            high,
        )
        assert env._dirty == before


class TestSpeculative:
    def test_high_training_flips_low_branch_cost(self):
        lattice = two_point()
        low, high = _labels(lattice)
        cold = SpeculativeHardware(lattice, tiny_machine())
        trained = cold.clone()
        taken = AccessTrace(instruction=CODE, taken=True)
        for _ in range(3):
            trained.step(StepKind.BRANCH, taken, high, high)
        assert cold.equivalent_to(trained, low)
        # Same low branch, not taken: the cold predictor (weakly not-taken)
        # predicts right; the high-trained one mispredicts and flushes.
        not_taken = AccessTrace(instruction=CODE, taken=False)
        cost_cold = cold.step(StepKind.BRANCH, not_taken, low, low)
        cost_trained = trained.step(StepKind.BRANCH, not_taken, low, low)
        assert cost_trained == cost_cold + SpeculativeHardware.FLUSH_PENALTY

    def test_mispredict_squashes_wrong_path_fetches(self):
        lattice = two_point()
        low, high = _labels(lattice)
        cold = SpeculativeHardware(lattice, tiny_machine())
        trained = cold.clone()
        for _ in range(3):
            trained.step(
                StepKind.BRANCH, AccessTrace(instruction=CODE, taken=True),
                high, high,
            )
        # Warm both low I-cache partitions with the fall-through blocks.
        for env in (cold, trained):
            for i in range(1, SpeculativeHardware.WINDOW + 1):
                env.step(
                    StepKind.SKIP,
                    AccessTrace(instruction=CODE + i * 8),
                    low, low,
                )
        assert cold.equivalent_to(trained, low)
        not_taken = AccessTrace(instruction=CODE, taken=False)
        cold.step(StepKind.BRANCH, not_taken, low, low)
        trained.step(StepKind.BRANCH, not_taken, low, low)
        # The squash evicted low-partition state: single-step NI is gone.
        assert not cold.equivalent_to(trained, low)


class TestFrequencyScaling:
    def test_high_activity_throttles_low_steps(self):
        lattice = two_point()
        low, high = _labels(lattice)
        cool = FrequencyScalingHardware(lattice, tiny_machine())
        hot = cool.clone()
        # Push the meter into an odd (throttled) thermal window.
        for _ in range(FrequencyScalingHardware.WINDOW):
            hot.step(StepKind.SKIP, AccessTrace(instruction=CODE), high, high)
        assert cool.equivalent_to(hot, low)
        probe = AccessTrace(instruction=CODE + 8)
        cost_cool = cool.step(StepKind.SKIP, probe, low, low)
        cost_hot = hot.step(StepKind.SKIP, probe, low, low)
        assert cost_hot == cost_cool * FrequencyScalingHardware.SLOWDOWN


class TestLeakyTlb:
    def test_high_walk_installs_into_public_tlb(self):
        lattice = two_point()
        low, high = _labels(lattice)
        cold = LeakyTlbHardware(lattice, tiny_machine())
        warm = cold.clone()
        # A high access walk-installs a translation into the shared TLB --
        # a write to bottom-projected state: the Property 5 violation.
        _skip(warm, DATA, high, high)
        assert not cold.equivalent_to(warm, low)

    def test_shared_tlb_is_wider_than_partition_tlbs(self):
        lattice = two_point()
        env = LeakyTlbHardware(lattice, tiny_machine())
        assert env.shared_dtlb.params.ways >= LeakyTlbHardware.MIN_WAYS
        assert env.shared_itlb.params.ways >= LeakyTlbHardware.MIN_WAYS

    def test_low_probe_times_the_victims_page(self):
        lattice = two_point()
        low, high = _labels(lattice)
        cold = LeakyTlbHardware(lattice, tiny_machine())
        warm = cold.clone()
        _skip(warm, DATA, high, high)
        probe = AccessTrace(instruction=CODE, reads=(DATA,))
        # Same page, so the warmed TLB hits where the cold one walks.
        cost_cold = cold.step(StepKind.ASSIGN, probe, low, low)
        cost_warm = warm.step(StepKind.ASSIGN, probe, low, low)
        assert cost_warm < cost_cold
