"""The hardware registry: the zoo's single source of truth."""

import pytest

from repro.hardware import (
    REGISTRY,
    HardwareRegistry,
    HardwareRegistryError,
    MachineEnvironment,
    NullHardware,
    make_hardware,
    tiny_machine,
)
from repro.hardware.registry import LATTICE_POINTS, PARAM_POINTS, HardwareSpec
from repro.lattice import two_point

EXPECTED_SECURE = {"null", "nofill", "partitioned"}
EXPECTED_INSECURE = {
    "standard", "bus", "writeback", "speculative", "frequency", "leakytlb"
}


def _null_spec(name="toy", **overrides):
    fields = dict(
        name=name,
        factory=lambda lattice, params=None: NullHardware(lattice),
        summary="test-only",
        expected_secure=True,
        lattice_points=("two_point",),
    )
    fields.update(overrides)
    return HardwareSpec(**fields)


class TestDefaultRegistry:
    def test_all_models_registered(self):
        assert set(REGISTRY.names()) == EXPECTED_SECURE | EXPECTED_INSECURE

    def test_registration_order_is_stable(self):
        # CLI choice lists and campaign output key off this order.
        assert REGISTRY.names()[:4] == (
            "null", "standard", "nofill", "partitioned"
        )

    def test_alias_resolves_to_canonical(self):
        assert REGISTRY.get("nopar") is REGISTRY.get("standard")
        assert "nopar" in REGISTRY
        assert "nopar" in REGISTRY.choices()
        assert "nopar" not in REGISTRY.names()

    def test_unknown_name_lists_choices(self):
        with pytest.raises(HardwareRegistryError, match="unknown hardware"):
            REGISTRY.get("vaporware")
        with pytest.raises(HardwareRegistryError, match="partitioned"):
            REGISTRY.get("vaporware")

    def test_insecure_specs_declare_violations(self):
        for spec in REGISTRY.specs(secure=False):
            assert spec.violates, f"{spec.name} must declare what it breaks"
            for prop in spec.violates:
                assert prop in (
                    "P2-determinism", "P5-write-label",
                    "P6-read-label", "P7-single-step-NI",
                )

    def test_secure_specs_declare_nothing(self):
        for spec in REGISTRY.specs(secure=True):
            assert spec.violates == ()

    def test_specs_filter(self):
        names = {s.name for s in REGISTRY.specs(secure=True)}
        assert names == EXPECTED_SECURE
        assert len(REGISTRY.specs()) == len(REGISTRY)

    def test_every_point_name_is_known(self):
        for spec in REGISTRY:
            assert set(spec.lattice_points) <= set(LATTICE_POINTS)
            assert set(spec.param_points) <= set(PARAM_POINTS)
            assert spec.quantify_point in PARAM_POINTS

    def test_make_builds_every_model(self):
        lattice = two_point()
        for spec in REGISTRY:
            env = REGISTRY.make(spec.name, lattice, tiny_machine())
            assert isinstance(env, MachineEnvironment)
            assert env.lattice is lattice

    def test_make_hardware_delegates_to_registry(self):
        lattice = two_point()
        env = make_hardware("bus", lattice, tiny_machine())
        assert type(env).__name__ == "SharedBusHardware"

    def test_make_hardware_unknown_is_value_error(self):
        # HardwareRegistryError subclasses ValueError, preserving the old
        # make_hardware contract.
        with pytest.raises(ValueError, match="unknown hardware model"):
            make_hardware("bogus", two_point())


class TestRegistryMechanics:
    def test_register_and_get(self):
        registry = HardwareRegistry()
        spec = registry.register(_null_spec())
        assert registry.get("toy") is spec
        assert len(registry) == 1
        assert list(registry) == [spec]

    def test_duplicate_name_rejected(self):
        registry = HardwareRegistry()
        registry.register(_null_spec())
        with pytest.raises(HardwareRegistryError, match="already registered"):
            registry.register(_null_spec())

    def test_alias_collision_rejected(self):
        registry = HardwareRegistry()
        registry.register(_null_spec(name="one", aliases=("dup",)))
        with pytest.raises(HardwareRegistryError, match="already registered"):
            registry.register(_null_spec(name="dup"))

    def test_unknown_lattice_point_rejected(self):
        registry = HardwareRegistry()
        with pytest.raises(HardwareRegistryError, match="lattice point"):
            registry.register(_null_spec(lattice_points=("moebius",)))

    def test_unknown_param_point_rejected(self):
        registry = HardwareRegistry()
        with pytest.raises(HardwareRegistryError, match="parameter point"):
            registry.register(_null_spec(param_points=("galactic",)))

    def test_unknown_quantify_point_rejected(self):
        registry = HardwareRegistry()
        with pytest.raises(HardwareRegistryError, match="parameter point"):
            registry.register(_null_spec(quantify_point="galactic"))

    def test_verdict_word(self):
        assert _null_spec().verdict_word() == "secure"
        assert _null_spec(expected_secure=False).verdict_word() == "insecure"
