#!/usr/bin/env python
"""The web-login case study (Sec. 8.3), end to end.

Reproduces the Bortz-Boneh username-probing attack against an unmitigated
login routine, then shows the language-based defense: the type system
pinpoints the leak, the mitigate command closes it, and the attack drops to
chance.  Finally the deployment shape from the paper's Sec. 1 scenario:
the mitigated login behind the multi-tenant serving gateway
(docs/SERVICE.md), many simulated clients, quantized release, and the
cross-tenant leakage audit's verdict.

Run: python examples/web_login.py
"""

from repro.apps.login import (
    CredentialTable,
    LoginSystem,
    login_attempt_times,
    summarize_valid_invalid,
)
from repro.attacks import chance_accuracy, username_probe
from repro.service import audit_service, serve_workload
from repro.typesystem import TypingError, typecheck

TABLE = 40
VALID = 12


def main():
    creds = CredentialTable.generate(size=TABLE, valid=VALID, seed=1)
    validity = [creds.is_valid(i) for i in range(TABLE)]

    # --- The attack on the unmitigated server -----------------------------
    print(f"Credential table: {TABLE} slots, {VALID} valid usernames "
          "(which ones is the secret).\n")
    unmitigated = LoginSystem(table_size=TABLE, mitigated=False)
    times = login_attempt_times(unmitigated, creds, hardware="nopar")
    summary = summarize_valid_invalid(times, creds)
    probe = username_probe(times, validity)
    print("Unmitigated server on commodity hardware (nopar):")
    print(f"  avg login time  valid: {summary['valid']:8.0f} cycles")
    print(f"                invalid: {summary['invalid']:8.0f} cycles")
    print(f"  username probe: {probe.accuracy:.0%} accuracy "
          f"(chance would be {chance_accuracy(times[:VALID], times[VALID:]):.0%})"
          f" -- usernames harvested.\n")

    # --- What the type system says -----------------------------------------
    print("The type system localizes the leak:")
    try:
        typecheck(unmitigated.program, unmitigated.gamma)
    except TypingError as err:
        print(f"  {err}\n")

    # --- The defense --------------------------------------------------------
    mitigated = LoginSystem(table_size=TABLE, mitigated=True)
    budget = mitigated.calibrate_budget(attempts=8, hardware="partitioned")
    print("Mitigated server on partitioned-cache hardware "
          f"(initial prediction {budget} cycles, Sec. 8.2's 110% rule):")
    times = login_attempt_times(mitigated, creds, hardware="partitioned")
    summary = summarize_valid_invalid(times, creds)
    print(f"  avg login time  valid: {summary['valid']:8.0f} cycles")
    print(f"                invalid: {summary['invalid']:8.0f} cycles")
    print(f"  distinct observable times across all attempts: "
          f"{len(set(times))}")
    probe = username_probe(times, validity)
    print(f"  username probe accuracy: {probe.accuracy:.0%} "
          "(no better than guessing the majority class)")
    print("\nLogins still work:",
          "state=1" if mitigated.run(
              creds, creds.usernames[0], creds.passwords[0],
              hardware="partitioned").memory.read("state") == 1
          else "BROKEN")

    # --- The deployment shape: many clients, one gateway --------------------
    print("\nServing it: 60 requests from simulated clients through the")
    print("timing-safe gateway (quantized release, per-tenant mitigation):")
    result = serve_workload({
        "seed": 8,
        "requests": 60,
        "policy": "quantized",
        "quantum": 2048,
        "workers": 2,
        "queue_depth": 8,
        "arrival": {"kind": "closed", "clients": 6, "think": 512},
        "tenants": [
            {"name": "login-a", "app": "login",
             "config": {"table_size": 8}},
            {"name": "login-b", "app": "login",
             "config": {"table_size": 8}},
            {"name": "passwords", "app": "password",
             "config": {"length": 5}},
        ],
    })
    audit = audit_service(result)
    print(f"  {len(result.completed())} completed in {result.makespan} "
          f"cycles ({result.throughput_per_mcycle():.0f} req/Mcycle)")
    for name, tenant in sorted(audit.tenants.items()):
        print(f"  {name}: observed {tenant.observed_bits:.3f} bits <= "
              f"Theorem 2 bound {tenant.bound_bits:.3f} bits"
              + (f"; distinguisher advantage "
                 f"{tenant.probe.advantage:+.3f}" if tenant.probe else ""))
    print(f"  Service audit: {'OK' if audit.ok else 'VIOLATED'} -- "
          "no tenant's clients can read another tenant's secrets "
          "from response times.")


if __name__ == "__main__":
    main()
