#!/usr/bin/env python
"""Indirect timing dependencies: the data-cache channel of Sec. 2.1-2.2.

The victim branches on a secret and touches one of two public arrays.  On
commodity hardware the secret imprints on the shared cache, and a
coresident adversary recovers it two independent ways:

* by timing a later public access in the victim itself (line ``l3 := l1``);
* by prime-and-probe: timing its *own* accesses to the arrays afterwards.

The paper's secure designs (no-fill and the partitioned cache) blind both,
and the executable software/hardware contract (Properties 2, 5-7) predicts
exactly which design leaks.

Run: python examples/cache_side_channel.py
"""

from repro import api, two_point
from repro.attacks import probe
from repro.machine import Memory
from repro.machine.layout import Layout
from repro.hardware import make_hardware, run_contract_suite, tiny_machine

# Array names chosen so the layout gives path_b its own cache block
# (path_a shares a block with the scalars and is also read by line 3,
# so path_b's residency is the clean h-discriminating bit).
VICTIM = """
if h then { x := path_a[0] } else { x := path_b[0] };
l3 := path_a[0]
"""
GAMMA = {"h": "H", "x": "H", "path_a": "L", "path_b": "L", "l3": "L"}


def main():
    lattice = two_point()
    compiled = api.compile_program(VICTIM, gamma=GAMMA, lattice=lattice,
                                   check=False)  # deliberately insecure
    memory_spec = {"h": 0, "x": 0, "path_a": [7] * 8, "path_b": [8] * 8,
                   "l3": 0}
    layout = Layout.build(compiled.program, Memory(memory_spec))
    targets = [layout.array_addr["path_a"], layout.array_addr["path_b"]]

    print("Victim: if h then touch path_a[] else touch path_b[]\n")
    header = f"{'hardware':14s} {'t(h=0)':>8s} {'t(h=1)':>8s} " \
             f"{'probe(path_a, path_b)':>26s}  verdict"
    print(header)
    print("-" * len(header))
    for hw in ("nopar", "nofill", "partitioned"):
        results = {}
        for h in (0, 1):
            spec = dict(memory_spec)
            spec["h"] = h
            results[h] = compiled.run(spec, hardware=hw)
        probes = {
            h: probe(results[h].environment, targets).costs for h in (0, 1)
        }
        leaks = probes[0] != probes[1]
        verdict = "LEAKS via probe" if leaks else "probe blinded"
        print(f"{hw:14s} {results[0].time:8d} {results[1].time:8d} "
              f"{str(probes[0]) + '/' + str(probes[1]):>26s}  {verdict}")

    print("\nContract check (Properties 2, 5-7) per design:")
    for hw in ("nopar", "nofill", "partitioned"):
        report = run_contract_suite(
            lambda name=hw: make_hardware(name, lattice, tiny_machine()),
            lattice, trials=8,
        )
        failing = ", ".join(report.failing_properties()) or "all hold"
        print(f"  {hw:14s} {failing}")
    print("\nThe design that fails P5 (write label) is exactly the one the "
          "probe cracks.")
    print("Note the victim's own times differ with h on every design: this "
          "program is ill-typed\n(the type system demands a mitigate before "
          "'l3 := ...'), hardware alone cannot save it.")


if __name__ == "__main__":
    main()
