#!/usr/bin/env python
"""Verifying a new hardware design against the software/hardware contract.

A central claim of the paper: "Using this formal contract, implementers may
verify that their compiler and architecture designs control timing
channels."  This example plays hardware architect twice:

1. a *random-permutation cache*: replaces LRU with a deterministic
   pseudo-random replacement -- still secure, and the checkers agree;
2. a *leaky prefetcher*: an optimization that pulls a high partition's hot
   line into the low partition to speed up future low accesses -- a
   plausible performance hack that breaks Properties 5/7, and the checkers
   produce a concrete counterexample.

Run: python examples/verify_your_hardware.py
"""

from repro import two_point
from repro.hardware import (
    PartitionedHardware,
    run_contract_suite,
    tiny_machine,
)


class PermutationCachePartitioned(PartitionedHardware):
    """Partitioned design with hashed set indexing (still deterministic).

    Address bits are mixed before indexing; everything else inherited.
    Determinism is all the contract needs -- replacement/indexing policy is
    free choice, which this design demonstrates.
    """

    _MIX = 0x9E3779B1

    def _partitioned_access(self, address, label, instruction):
        mixed = (address * self._MIX) & 0xFFFF_FFFF
        # Keep block offset bits so block granularity is unchanged.
        mixed = (mixed & ~0x1F) | (address & 0x1F)
        return super()._partitioned_access(mixed, label, instruction)


class LeakyPrefetcherPartitioned(PartitionedHardware):
    """A 'clever' optimization: if the high partition holds the line a
    low access wants, copy it into the low partition for next time.

    Faster on mixed workloads -- and insecure: low cache state now depends
    on high state (Property 7), and a high-labeled step modified... nothing;
    the *low* step modified low state based on *high* state, which is the
    single-step noninterference violation.
    """

    def step(self, kind, trace, read_label, write_label):
        cost = super().step(kind, trace, read_label, write_label)
        bottom = self.lattice.bottom
        if read_label == bottom:
            high = self.partitions[self.lattice.top]
            low = self.partitions[bottom]
            for address in trace.reads:
                if high.holds_data(address):
                    low.l1_data.touch(address)  # the leak
        return cost


def audit(name, factory, lattice):
    report = run_contract_suite(factory, lattice, trials=12)
    failing = report.failing_properties()
    print(f"{name}:")
    print("  " + report.summary().replace("\n", "\n  "))
    if failing:
        example = report.violations[failing[0]][0]
        print(f"  first counterexample: {example}")
    print(f"  verdict: {'SECURE (ship it)' if not failing else 'REJECTED'}\n")
    return failing


def main():
    lattice = two_point()
    ok = audit(
        "Permutation-indexed partitioned cache",
        lambda: PermutationCachePartitioned(lattice, tiny_machine()),
        lattice,
    )
    bad = audit(
        "Partitioned cache + cross-partition prefetcher",
        lambda: LeakyPrefetcherPartitioned(lattice, tiny_machine()),
        lattice,
    )
    assert not ok and bad, "the audit should pass design 1 and fail design 2"
    print("The contract is the review gate: design 1 may replace the "
          "shipped hardware,\ndesign 2's optimization is exactly the kind "
          "of 'ad hoc and hard to verify'\nchange the paper warns about "
          "(cf. the Kong et al. break of earlier designs).")


if __name__ == "__main__":
    main()
