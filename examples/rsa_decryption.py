#!/usr/bin/env python
"""The RSA case study (Sec. 8.4): Kocher-style key recovery and its defeat.

Square-and-multiply executes one extra modular multiply per set bit of the
private exponent, so unmitigated decryption time is an affine function of
the key's Hamming weight.  This script calibrates that line on known keys,
recovers a target key's weight from a single timing measurement, and then
shows per-block language-level mitigation flattening the channel while
decryption stays correct.

Run: python examples/rsa_decryption.py
"""

from repro.apps.rsa import RsaSystem
from repro.apps.rsa_math import encrypt_blocks, generate_keypair
from repro.attacks import hamming_weight_attack

KEY_BITS = 32
BLOCKS = 2


def main():
    calibration = [generate_keypair(KEY_BITS, seed=s) for s in range(8)]
    target = generate_keypair(KEY_BITS, seed=1234)
    message = [123456789 % min(k.n for k in calibration + [target]),
               987654321 % min(k.n for k in calibration + [target])]

    # --- attack the unmitigated implementation -----------------------------
    unmitigated = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                            mitigation_mode="none")
    outcome = hamming_weight_attack(
        unmitigated, calibration, target, message, hardware="partitioned"
    )
    print("Unmitigated decryption:")
    print(f"  calibration fit: time = {outcome.model.intercept:.0f} + "
          f"{outcome.model.slope:.1f} * weight  "
          f"(r = {outcome.model.correlation:.3f})")
    print(f"  target key true weight(d) = {outcome.true_weight}, "
          f"recovered = {outcome.recovered_weight:.1f}  -> "
          f"{'ATTACK SUCCEEDED' if outcome.succeeded() else 'attack failed'}")

    # --- the defense ---------------------------------------------------------
    mitigated = RsaSystem(key_bits=KEY_BITS, blocks=BLOCKS,
                          mitigation_mode="language")
    budget = mitigated.calibrate_budget(samples=6, hardware="partitioned")
    print(f"\nPer-block mitigation on (initial prediction {budget} cycles):")
    outcome = hamming_weight_attack(
        mitigated, calibration, target, message, hardware="partitioned"
    )
    print(f"  calibration fit slope: {outcome.model.slope:.4f} "
          "cycles/bit (flat: timing no longer tracks the key)")
    verdict = ("ATTACK SUCCEEDED" if outcome.succeeded(0.5)
               else "attack defeated")
    print(f"  recovery attempt: {verdict}")

    # --- correctness is preserved --------------------------------------------
    cipher = encrypt_blocks(message, target)
    plain, result = mitigated.decrypt_and_check(
        target, cipher, hardware="partitioned"
    )
    print(f"\nDecryption still correct: {plain == message} "
          f"(total {result.time} cycles, "
          f"{len(result.mitigations)} mitigated blocks)")


if __name__ == "__main__":
    main()
