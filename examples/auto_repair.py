#!/usr/bin/env python
"""Tooling tour: from leaky source to an audited deployment, automatically.

The type system *isolates* where timing must be controlled (Sec. 5); the
suggest module turns its errors into minimal ``mitigate`` insertions; the
quantitative layer then puts a number on what remains.  This script walks a
small analytics service through the whole pipeline.

Run: python examples/auto_repair.py
"""

from repro import api
from repro.lang import DEFAULT_LATTICE, parse, pretty
from repro.machine import Memory
from repro.hardware import PartitionedHardware, tiny_machine
from repro.quantitative import leakage_bound, secret_variants, verify_theorem2
from repro.typesystem import (
    SecurityEnvironment,
    TypingError,
    auto_mitigate,
    infer_labels,
    typecheck,
)

SRC = """
// a tiny analytics endpoint: how many secret scores beat the threshold?
count := 0;
i := 0;
while i < n do {
    if scores[i] > threshold then { count := count + 1 } else { skip };
    i := i + 1
};
ready := 1    // public response marker -- its TIMING is the channel
"""

GAMMA = {"scores": "H", "threshold": "H", "count": "H", "i": "H",
         "n": "L", "ready": "L"}


def main():
    lat = DEFAULT_LATTICE
    gamma = SecurityEnvironment(lat, {k: lat[v] for k, v in GAMMA.items()})

    print("1) Typechecking the source...")
    program = infer_labels(parse(SRC), gamma)
    try:
        typecheck(program, gamma)
    except TypingError as err:
        print(f"   rejected: {err}\n")

    print("2) auto_mitigate proposes the minimal repair:")
    fixed, placements = auto_mitigate(program, gamma)
    for p in placements:
        print(f"   {p.describe()}")
    info = typecheck(fixed, gamma)
    print("   repaired program typechecks. Source:\n")
    print("   " + pretty(fixed).replace("\n", "\n   "))

    print("\n3) Quantitative audit over 16 threshold secrets:")
    base = Memory({"scores": [5, 9, 1, 7, 3, 8, 2, 6], "threshold": 0,
                   "count": 0, "i": 0, "n": 8, "ready": 0})
    variants = secret_variants(base, ({"threshold": t} for t in range(16)))
    audit = verify_theorem2(
        fixed, gamma, lat, [lat["H"]], lat["L"], base,
        PartitionedHardware(lat, tiny_machine()), variants,
        mitigate_pc=info.mitigate_pc,
    )
    worst_t = max((k[-1][3] for k in audit.leakage.observations if k),
                  default=1)
    bound = leakage_bound(lat, [lat["H"]], lat["L"], worst_t, 1)
    print(f"   measured leakage Q        = {audit.leakage.bits:.3f} bits")
    print(f"   timing variations log|V|  = {audit.variations.bits:.3f} bits")
    print(f"   Sec. 7 closed-form bound  = {bound:.3f} bits (T={worst_t})")
    print(f"   Theorem 2 {'holds' if audit.holds else 'VIOLATED'}")
    print("\nThe service ships with a machine-checked leakage budget.")


if __name__ == "__main__":
    main()
