#!/usr/bin/env python
"""Multilevel security: the Sec. 6 machinery beyond two points.

The paper's quantitative definitions are *per level-set*: leakage is
measured from a set of levels L to an adversary level lA, with the
exclusion L_{lA} (levels the adversary already sees) and the upward closure
L^ (levels as restrictive as L).  This example uses the three-level chain
L <= M <= H to show:

* a program may leak from {H} to L while leaking *nothing* from {M} to L
  (the paper's own example: sleep(h));
* the local penalty policy keeps mitigation levels independent;
* the partitioned hardware gives every level its own cache partition.

Run: python examples/multilevel_policies.py
"""

from repro import api, chain
from repro.machine import Memory
from repro.hardware import PartitionedHardware, StepKind, tiny_machine
from repro.machine.layout import AccessTrace
from repro.quantitative import (
    leakage_bound,
    measure_leakage,
    secret_variants,
)


def main():
    lattice = chain(("L", "M", "H"))
    L, M, H = lattice["L"], lattice["M"], lattice["H"]

    # --- per-level-set leakage ---------------------------------------------
    compiled = api.compile_program(
        "mitigate(4, H) { sleep(h) }; l := 1",
        gamma={"h": "H", "m": "M", "l": "L"},
        lattice=lattice,
    )
    base = Memory({"h": 0, "m": 0, "l": 0})
    env = PartitionedHardware(lattice, tiny_machine())

    q_h = measure_leakage(
        compiled.program, compiled.gamma, lattice, [H], L, base, env,
        secret_variants(base, ({"h": v} for v in range(16))),
        mitigate_pc=compiled.typing.mitigate_pc,
    )
    q_m = measure_leakage(
        compiled.program, compiled.gamma, lattice, [M], L, base, env,
        secret_variants(base, ({"m": v} for v in range(16))),
        mitigate_pc=compiled.typing.mitigate_pc,
    )
    print("Program: mitigate(4, H) { sleep(h) }; l := 1   (h: H, m: M)")
    print(f"  leakage {{H}} -> L: {q_h.bits:.2f} bits over 16 secrets "
          f"({q_h.distinguishable} observations)")
    print(f"  leakage {{M}} -> L: {q_m.bits:.2f} bits  "
          "(zero: the program never reads M, and the definitions keep the "
          "level sets apart)")
    bound = leakage_bound(lattice, [H], L, elapsed=2048,
                          relevant_mitigations=1)
    print(f"  Sec. 7 bound for {{H}} -> L at T=2048, K=1: {bound:.1f} bits\n")

    # --- upward closure in action -------------------------------------------
    excluded = lattice.exclude_observable([M], L)
    closure = lattice.upward_closure(excluded)
    print(f"Level-set operators: L={{M}}, adversary=L")
    print(f"  L_(lA) (not observable to adversary) = "
          f"{sorted(l.name for l in excluded)}")
    print(f"  upward closure L^ = {sorted(l.name for l in closure)} "
          "(information at M may flow on to H, so H must be counted)\n")

    # --- per-level cache partitions -----------------------------------------
    env = PartitionedHardware(lattice, tiny_machine())
    addr = 0x1000_0000
    env.step(StepKind.ASSIGN, AccessTrace(instruction=0x400000,
                                          reads=(addr,)), M, M)
    print("Partitioned hardware after one M-labeled access:")
    for level in (L, M, H):
        fresh = PartitionedHardware(lattice, tiny_machine())
        touched = env.project(level) != fresh.project(level)
        print(f"  partition {level.name}: "
              f"{'modified' if touched else 'untouched'}")
    print("\nOnly the M partition changed: an L-labeled probe (which may "
          "search L only)\nand an incomparable observer both learn nothing "
          "-- Property 5 at work.")


if __name__ == "__main__":
    main()
