#!/usr/bin/env python
"""One-round cache attack on a table-lookup cipher — and its defeat.

The AES cache attacks the paper cites as motivation (Osvik-Shamir-Tromer,
Gullasch et al.) recover key bytes by observing which S-box cache lines an
encryption touches.  This script runs that attack against a toy S-box
cipher written in the object language:

* on commodity hardware (`nopar`) the attacker recovers the top 5-7 bits of
  each key byte from a handful of chosen plaintexts (line granularity is
  the textbook resolution limit);
* on the paper's partitioned hardware the secret-indexed lookups live in
  the H partition, the public probe sees nothing, and zero bits leak.

Run: python examples/sbox_key_recovery.py
"""

import random

from repro.apps.sbox_cipher import SboxCipher, random_key
from repro.attacks.sbox_attack import recover_key_byte

BYTES_TO_ATTACK = 4


def main():
    rng = random.Random(1)
    key = random_key(rng)
    plaintexts = [rng.randrange(256) for _ in range(10)]
    print(f"victim key bytes (secret): {key[:BYTES_TO_ATTACK]} ...")
    print(f"attacker's chosen plaintext bytes: {plaintexts}\n")

    for hardware in ("nopar", "partitioned"):
        print(f"--- hardware = {hardware} ---")
        for index in range(BYTES_TO_ATTACK):
            cipher = SboxCipher(length=index + 1, mitigated=True)
            result = recover_key_byte(
                cipher, key, plaintexts, byte_index=index, hardware=hardware
            )
            survivors = sorted(result.candidates)
            shown = (str(survivors) if len(survivors) <= 8
                     else f"{len(survivors)} candidates")
            print(f"  key[{index}] = {key[index]:3d}: learned "
                  f"{result.bits_learned():4.1f} bits -> {shown}")
        print()

    print("The partitioned design (Sec. 4.3) confines the key-dependent")
    print("S-box lines to the H partition; the attacker's public probes hit")
    print("a wall of uniform misses (Property 6).")


if __name__ == "__main__":
    main()
