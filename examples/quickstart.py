#!/usr/bin/env python
"""Quickstart: the full pipeline in one page.

Write a program in the timing-label language, let the compiler infer labels,
typecheck it against the Fig. 4 rules, run it on simulated secure hardware,
and watch the mitigate command bound what timing reveals about a secret.

Run: python examples/quickstart.py
"""

from repro import api, two_point
from repro.typesystem import TypingError


def main():
    lattice = two_point()

    # --- 1. A leaky program is rejected -----------------------------------
    # The running time of the loop depends on the secret h, and the final
    # public assignment's *timing* is observable to a coresident adversary.
    leaky = """
    while h > 0 do { h := h - 1 };
    ready := 1
    """
    print("1) Typechecking the leaky program...")
    try:
        api.compile_program(leaky, gamma={"h": "H", "ready": "L"},
                            lattice=lattice)
    except TypingError as err:
        print(f"   rejected, as it should be:\n   {err}\n")

    # --- 2. mitigate bounds the leak ---------------------------------------
    # Wrapping the secret-dependent region in mitigate(e, H) makes the
    # program well-typed: the runtime pads the block to predictions from a
    # doubling schedule, so only O(log T) outcomes are observable.
    mitigated = """
    mitigate(8, H) {
        while h > 0 do { h := h - 1 }
    };
    ready := 1
    """
    compiled = api.compile_program(
        mitigated, gamma={"h": "H", "ready": "L"}, lattice=lattice
    )
    print("2) The mitigated program typechecks.")
    print(f"   inferred timing end-label: {compiled.typing.end_label}")

    # --- 3. Run it on the partitioned-cache hardware of Sec. 4.3 -----------
    print("\n3) Observable timing of 'ready := 1' for secrets 0..40:")
    observed = {}
    for h in range(41):
        result = compiled.run({"h": h, "ready": 0}, hardware="partitioned")
        ready_event = result.events[-1]
        observed.setdefault(ready_event.time, []).append(h)
    for time, secrets in sorted(observed.items()):
        span = f"{secrets[0]}..{secrets[-1]}"
        print(f"   time {time:5d} cycles  <- secrets {span}")
    print(f"\n   41 secrets collapse onto {len(observed)} distinguishable "
          f"timings: leakage <= log2({len(observed)}) bits, as Theorem 2 "
          "promises.")


if __name__ == "__main__":
    main()
